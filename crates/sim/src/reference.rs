//! The pre-refactor *stepping* engine, kept verbatim as a frozen
//! reference implementation.
//!
//! [`crate::engine`] was rewritten to be event-driven (a `BinaryHeap`
//! completion queue over dense per-task state); this module preserves
//! the original map-based stepping loop byte for byte so that
//!
//! * the differential proptests in `crates/sim/tests/` can assert the
//!   two engines produce **identical** `RunResult`s (schedules, release
//!   times, decision counts, and fault logs) on random instances, and
//! * the `rigid-bench` perf pipeline can measure the speedup of the
//!   event-driven hot path against the exact code it replaced.
//!
//! Do not modify this file for performance or style: its value is that
//! it does not change. Bug fixes that alter observable behavior must be
//! applied to **both** engines, with a differential test witnessing the
//! agreement.

use crate::engine::{EngineStats, RunResult};
use crate::error::{RunError, SchedulerViolation, SourceViolation};
use crate::fault::{Attempt, AttemptOutcome, AttemptRecord, FaultLog, FaultModel, NoFaults};
use crate::schedule::Schedule;
use crate::scheduler::{FailureResponse, OnlineScheduler};
use rigid_dag::{InstanceSource, ReleasedTask, TaskGraph, TaskId};
use rigid_time::Time;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Internal record of a released task.
struct Known {
    spec_procs: u32,
    spec_time: Time,
    started: bool,
    attempts: u32,
}

/// Why a running entry will leave the running set.
enum RunningOutcome {
    /// Completes at the keyed instant.
    Completes,
    /// Fails at the keyed instant (fail-stop).
    Fails,
}

struct Running {
    id: TaskId,
    procs: u32,
    outcome: RunningOutcome,
}

/// Stepping-engine counterpart of [`crate::engine::run`].
///
/// # Panics
/// Panics on any contract violation, exactly like the main entry point.
pub fn run(source: &mut dyn InstanceSource, scheduler: &mut dyn OnlineScheduler) -> RunResult {
    match try_run(source, scheduler) {
        Ok(result) => result,
        Err(err) => panic!("{err}"),
    }
}

/// Stepping-engine counterpart of [`crate::engine::try_run`].
pub fn try_run(
    source: &mut dyn InstanceSource,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunResult, RunError> {
    try_run_faulty(source, scheduler, &mut NoFaults)
}

/// Stepping-engine counterpart of [`crate::engine::try_run_faulty`]:
/// the original per-step loop over `HashMap`/`BTreeMap` state.
pub fn try_run_faulty(
    source: &mut dyn InstanceSource,
    scheduler: &mut dyn OnlineScheduler,
    faults: &mut dyn FaultModel,
) -> Result<RunResult, RunError> {
    let procs = source.procs();
    assert!(procs >= 1);

    let mut schedule = Schedule::new(procs);
    let mut revealed = TaskGraph::new();
    // The source allocates dense ids; map them to the rebuilt graph (ids
    // must arrive in order for the rebuild to preserve them).
    let mut id_map: HashMap<TaskId, TaskId> = HashMap::new();
    let mut release_times: BTreeMap<TaskId, Time> = BTreeMap::new();

    let mut known: HashMap<TaskId, Known> = HashMap::new();
    let mut completed: HashSet<TaskId> = HashSet::new();
    let mut running: BTreeMap<(Time, u64), Running> = BTreeMap::new();
    let mut start_seq: u64 = 0;
    let mut completion_index: u64 = 0;
    let mut used: u32 = 0;
    let mut decisions: u64 = 0;
    let mut log = FaultLog::new(procs);

    let mut now = Time::ZERO;

    let mut pending_releases: Vec<ReleasedTask> = source.initial();

    loop {
        // Ingest releases, validating the source contract first.
        for rel in pending_releases.drain(..) {
            if known.contains_key(&rel.id) {
                return Err(SourceViolation::DuplicateRelease { task: rel.id }.into());
            }
            if rel.spec.procs > procs {
                return Err(SourceViolation::Oversubscription {
                    task: rel.id,
                    needed: rel.spec.procs,
                    platform: procs,
                }
                .into());
            }
            for &p in &rel.preds {
                if !id_map.contains_key(&p) {
                    return Err(
                        SourceViolation::UnknownPredecessor { task: rel.id, pred: p }.into()
                    );
                }
                if !completed.contains(&p) {
                    return Err(
                        SourceViolation::PrematureRelease { task: rel.id, pred: p }.into()
                    );
                }
            }
            let new_id = revealed.add_task(rel.spec.clone());
            id_map.insert(rel.id, new_id);
            for &p in &rel.preds {
                let mapped = id_map[&p];
                revealed.add_edge(mapped, new_id);
            }
            release_times.insert(rel.id, now);
            known.insert(
                rel.id,
                Known {
                    spec_procs: rel.spec.procs,
                    spec_time: rel.spec.time,
                    started: false,
                    attempts: 0,
                },
            );
            scheduler.on_release(&rel, now);
        }

        // Ask the scheduler what to start now. Repeat until it passes,
        // since starting a task may change what it wants (some schedulers
        // return one task per call). Capacity dips restrict *new* starts
        // only; running tasks keep their processors.
        let capacity = faults.capacity(now, procs).min(procs);
        log.min_capacity = log.min_capacity.min(capacity);
        let mut avail = capacity.saturating_sub(used);
        loop {
            decisions += 1;
            let to_start = scheduler.decide(now, avail);
            if to_start.is_empty() {
                break;
            }
            let mut seen = HashSet::new();
            for id in to_start {
                if !seen.insert(id) {
                    return Err(SchedulerViolation::DuplicateDecision { task: id }.into());
                }
                let k = match known.get_mut(&id) {
                    Some(k) => k,
                    None => return Err(SchedulerViolation::UnknownTask { task: id }.into()),
                };
                if k.started || completed.contains(&id) {
                    return Err(SchedulerViolation::DoubleStart { task: id }.into());
                }
                if k.spec_procs > avail {
                    return Err(SchedulerViolation::Oversubscribed {
                        task: id,
                        needed: k.spec_procs,
                        free: avail,
                    }
                    .into());
                }
                k.started = true;
                let attempt = k.attempts;
                k.attempts += 1;
                avail -= k.spec_procs;
                used += k.spec_procs;

                let fate = faults.on_start(id, attempt, now, k.spec_time, k.spec_procs);
                let (leaves_at, outcome) = match fate {
                    Attempt::Complete => {
                        let finish = now + k.spec_time;
                        schedule.place(id, now, finish, k.spec_procs);
                        if attempt > 0 {
                            log.attempts.push(AttemptRecord {
                                task: id,
                                attempt,
                                start: now,
                                end: finish,
                                procs: k.spec_procs,
                                outcome: AttemptOutcome::Completed,
                            });
                        }
                        (finish, RunningOutcome::Completes)
                    }
                    Attempt::Inflated { actual } => {
                        assert!(
                            actual >= k.spec_time,
                            "fault model shrank task {id}: {actual} < nominal {}",
                            k.spec_time
                        );
                        let finish = now + actual;
                        schedule.place(id, now, finish, k.spec_procs);
                        log.inflated_area +=
                            (actual - k.spec_time).mul_int(k.spec_procs as i64);
                        log.attempts.push(AttemptRecord {
                            task: id,
                            attempt,
                            start: now,
                            end: finish,
                            procs: k.spec_procs,
                            outcome: AttemptOutcome::Inflated {
                                nominal: k.spec_time,
                                actual,
                            },
                        });
                        (finish, RunningOutcome::Completes)
                    }
                    Attempt::Fail { after } => {
                        assert!(
                            after.is_positive() && after <= k.spec_time,
                            "fault model failed task {id} outside (0, t]: {after}"
                        );
                        let dies_at = now + after;
                        log.failures += 1;
                        log.wasted_area += after.mul_int(k.spec_procs as i64);
                        log.attempts.push(AttemptRecord {
                            task: id,
                            attempt,
                            start: now,
                            end: dies_at,
                            procs: k.spec_procs,
                            outcome: AttemptOutcome::Failed {
                                nominal: k.spec_time,
                                ran: after,
                            },
                        });
                        (dies_at, RunningOutcome::Fails)
                    }
                };
                running.insert(
                    (leaves_at, start_seq),
                    Running { id, procs: k.spec_procs, outcome },
                );
                start_seq += 1;
            }
        }

        let next_event = running.keys().next().map(|&(t, _)| t);
        let next_arrival = source.next_timed_release(now);
        let next_capacity = faults.next_capacity_event(now);

        // The clock advances to the earliest of the three.
        let tick = [next_event, next_arrival, next_capacity]
            .into_iter()
            .flatten()
            .min();

        let Some(tick) = tick else {
            // Nothing runs, nothing will arrive, capacity never changes
            // again. If tasks remain unstarted the scheduler is stuck; if
            // the source still holds completion-driven tasks it will
            // never release them.
            let mut unstarted: Vec<TaskId> = known
                .iter()
                .filter(|(_, k)| !k.started)
                .map(|(id, _)| *id)
                .collect();
            if !unstarted.is_empty() {
                unstarted.sort();
                return Err(SchedulerViolation::Deadlock { unstarted, capacity }.into());
            }
            if source.expects_more() {
                return Err(SourceViolation::WithheldTasks.into());
            }
            break;
        };

        now = tick;
        if next_event == Some(tick) {
            // Process every completion/failure at this instant before
            // deciding again.
            while let Some((&(t, seq), entry)) = running.iter().next() {
                if t != now {
                    break;
                }
                let (id, p) = (entry.id, entry.procs);
                let fails = matches!(entry.outcome, RunningOutcome::Fails);
                running.remove(&(t, seq));
                used -= p;
                if fails {
                    let k = known.get_mut(&id).expect("running task is known");
                    k.started = false;
                    match scheduler.on_failure(id, now) {
                        FailureResponse::Retry => {}
                        FailureResponse::Abandon => {
                            return Err(RunError::TaskAbandoned {
                                task: id,
                                attempts: k.attempts,
                                at: now,
                            });
                        }
                    }
                } else {
                    completed.insert(id);
                    scheduler.on_complete(id, now);
                    let newly = source.on_complete(id, completion_index);
                    completion_index += 1;
                    pending_releases.extend(newly);
                }
            }
            // Clock arrivals landing exactly at this instant join the
            // same decision round.
            pending_releases.extend(source.timed_releases(now));
        } else if next_arrival == Some(tick) {
            pending_releases.extend(source.timed_releases(now));
        }
        // A pure capacity event needs no bookkeeping: the next loop
        // iteration re-reads the capacity and re-consults the scheduler.
    }

    Ok(RunResult {
        schedule,
        revealed,
        revealed_ids: id_map,
        procs,
        release_times,
        decisions,
        faults: log,
        stats: EngineStats::default(),
    })
}
