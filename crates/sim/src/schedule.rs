//! Schedules: per-task placements, makespan, and validation.
//!
//! A [`Schedule`] is the output artifact of every scheduler in the
//! workspace. Validation checks the two feasibility conditions of the
//! paper's Section 3.1: at most `P` processors in use at every instant,
//! and every task starting only after all of its predecessors finished.

use rigid_dag::{Instance, TaskId};
use rigid_time::Time;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;

/// One scheduled task: its start/finish instants and processor demand.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// Start instant `s ≥ 0`.
    pub start: Time,
    /// Finish instant `s + t`.
    pub finish: Time,
    /// Processors used (`p` of the rigid task).
    pub procs: u32,
}

impl Placement {
    /// Returns `true` if the task is running at instant `x` (open
    /// interval, matching the paper's `s < x < s + t`).
    pub fn running_at(&self, x: Time) -> bool {
        self.start < x && x < self.finish
    }
}

/// A complete schedule on `P` processors.
///
/// Placements are stored densely, indexed by task id (the engine's
/// source contract allocates dense ids), so the engine's `place` on the
/// hot path is an O(1) vector write instead of a B-tree insert.
/// Equality and the serialized wire format (`placements` as an
/// id-keyed object in ascending id order) are value-based and identical
/// to the previous `BTreeMap` representation.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    procs: u32,
    /// Slot `i` holds the placement of `TaskId(i)`, if placed.
    slots: Vec<Option<Placement>>,
    /// Number of occupied slots.
    placed: usize,
}

impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.procs == other.procs
            && self.placed == other.placed
            && self.placements().eq(other.placements())
    }
}

impl Eq for Schedule {}

impl Serialize for Schedule {
    fn serialize(&self) -> Value {
        // Mirror the legacy derived format exactly: `placements` is an
        // id-keyed object in ascending task-id order.
        let map: BTreeMap<TaskId, &Placement> = self.placements().map(|p| (p.task, p)).collect();
        Value::Object(vec![
            ("procs".to_string(), self.procs.serialize()),
            ("placements".to_string(), map.serialize()),
        ])
    }
}

impl Deserialize for Schedule {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let Value::Object(fields) = value else {
            return Err(Error::new(format!("expected object, found {}", value.kind())));
        };
        let field = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("Schedule is missing field {name:?}")))
        };
        let procs = u32::deserialize(field("procs")?)?;
        let map = BTreeMap::<TaskId, Placement>::deserialize(field("placements")?)?;
        let mut schedule = Schedule { procs, slots: Vec::new(), placed: 0 };
        for (id, p) in map {
            schedule.place(id, p.start, p.finish, p.procs);
        }
        Ok(schedule)
    }
}

/// A violation found by [`Schedule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A task starts before one of its predecessors finishes.
    PrecedenceViolated {
        /// The offending task.
        task: TaskId,
        /// The predecessor that had not finished.
        pred: TaskId,
    },
    /// More than `P` processors in use during some interval.
    CapacityExceeded {
        /// Start of the overloaded interval.
        at: Time,
        /// Processors demanded there.
        used: u64,
    },
    /// A task present in the instance is missing from the schedule.
    MissingTask(TaskId),
    /// A placement's duration does not equal the task's execution time,
    /// or its processor count does not match the spec.
    SpecMismatch(TaskId),
    /// A task starts before time zero.
    NegativeStart(TaskId),
}

impl Schedule {
    /// Creates an empty schedule for a platform of `procs` processors.
    pub fn new(procs: u32) -> Self {
        assert!(procs >= 1);
        Schedule { procs, slots: Vec::new(), placed: 0 }
    }

    /// Platform size `P`.
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Records a placement.
    ///
    /// # Panics
    /// Panics if the task was already placed or the interval is empty.
    pub fn place(&mut self, task: TaskId, start: Time, finish: Time, procs: u32) {
        assert!(finish > start, "empty placement interval for {task}");
        let idx = task.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let slot = &mut self.slots[idx];
        assert!(slot.is_none(), "task {task} placed twice");
        *slot = Some(Placement { task, start, finish, procs });
        self.placed += 1;
    }

    /// The placement of a task, if scheduled.
    pub fn placement(&self, task: TaskId) -> Option<&Placement> {
        self.slots.get(task.index()).and_then(|s| s.as_ref())
    }

    /// Iterates over all placements in task-id order.
    pub fn placements(&self) -> impl Iterator<Item = &Placement> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Number of placed tasks.
    pub fn len(&self) -> usize {
        self.placed
    }

    /// Returns `true` if nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.placed == 0
    }

    /// The makespan `max (s_i + t_i)` (zero for an empty schedule).
    pub fn makespan(&self) -> Time {
        self.placements().map(|p| p.finish).max().unwrap_or(Time::ZERO)
    }

    /// The processor-usage step function: instants where usage changes and
    /// the usage on the interval starting there, as `(instant, used)` pairs
    /// sorted by time. The final pair has usage 0.
    pub fn usage_profile(&self) -> Vec<(Time, u64)> {
        let mut deltas: BTreeMap<Time, i64> = BTreeMap::new();
        for p in self.placements() {
            *deltas.entry(p.start).or_insert(0) += p.procs as i64;
            *deltas.entry(p.finish).or_insert(0) -= p.procs as i64;
        }
        let mut out = Vec::with_capacity(deltas.len());
        let mut cur: i64 = 0;
        for (t, d) in deltas {
            cur += d;
            debug_assert!(cur >= 0);
            out.push((t, cur as u64));
        }
        out
    }

    /// Validates the schedule against an instance. Returns all violations
    /// (empty means feasible and complete).
    pub fn validate(&self, instance: &Instance) -> Vec<Violation> {
        let mut violations = Vec::new();
        let g = instance.graph();

        for id in g.task_ids() {
            match self.placement(id) {
                None => violations.push(Violation::MissingTask(id)),
                Some(p) => {
                    let spec = g.spec(id);
                    if p.finish - p.start != spec.time || p.procs != spec.procs {
                        violations.push(Violation::SpecMismatch(id));
                    }
                    if p.start.is_negative() {
                        violations.push(Violation::NegativeStart(id));
                    }
                    for &pred in g.preds(id) {
                        if let Some(pp) = self.placement(pred) {
                            if pp.finish > p.start {
                                violations.push(Violation::PrecedenceViolated { task: id, pred });
                            }
                        }
                        // A missing predecessor is reported as MissingTask.
                    }
                }
            }
        }

        for (t, used) in self.usage_profile() {
            if used > self.procs as u64 {
                violations.push(Violation::CapacityExceeded { at: t, used });
            }
        }

        violations
    }

    /// Panicking variant of [`validate`](Schedule::validate), for tests.
    pub fn assert_valid(&self, instance: &Instance) {
        let v = self.validate(instance);
        assert!(v.is_empty(), "schedule violations: {v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigid_dag::{DagBuilder, TaskSpec};

    fn chain_instance() -> Instance {
        DagBuilder::new()
            .task("a", Time::from_int(2), 2)
            .task("b", Time::from_int(1), 3)
            .edge("a", "b")
            .build(4)
    }

    #[test]
    fn valid_schedule_passes() {
        let inst = chain_instance();
        let g = inst.graph();
        let a = g.find_by_label("a").unwrap();
        let b = g.find_by_label("b").unwrap();
        let mut s = Schedule::new(4);
        s.place(a, Time::ZERO, Time::from_int(2), 2);
        s.place(b, Time::from_int(2), Time::from_int(3), 3);
        assert!(s.validate(&inst).is_empty());
        assert_eq!(s.makespan(), Time::from_int(3));
    }

    #[test]
    fn precedence_violation_detected() {
        let inst = chain_instance();
        let g = inst.graph();
        let a = g.find_by_label("a").unwrap();
        let b = g.find_by_label("b").unwrap();
        let mut s = Schedule::new(4);
        s.place(a, Time::ZERO, Time::from_int(2), 2);
        s.place(b, Time::from_int(1), Time::from_int(2), 3);
        let v = s.validate(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::PrecedenceViolated { task, pred } if *task == b && *pred == a)));
    }

    #[test]
    fn capacity_violation_detected() {
        let mut g = rigid_dag::TaskGraph::new();
        let a = g.add_task(TaskSpec::new(Time::from_int(2), 3));
        let b = g.add_task(TaskSpec::new(Time::from_int(2), 3));
        let inst = Instance::new(g, 4);
        let mut s = Schedule::new(4);
        s.place(a, Time::ZERO, Time::from_int(2), 3);
        s.place(b, Time::from_int(1), Time::from_int(3), 3);
        let v = s.validate(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::CapacityExceeded { used: 6, .. })));
    }

    #[test]
    fn touching_intervals_do_not_overlap() {
        // Usage at the exact boundary instant: a finishes at 2, b starts at
        // 2 — both demand 3 of 4 procs; this must be feasible (open
        // intervals).
        let mut g = rigid_dag::TaskGraph::new();
        let a = g.add_task(TaskSpec::new(Time::from_int(2), 3));
        let b = g.add_task(TaskSpec::new(Time::from_int(1), 3));
        let inst = Instance::new(g, 4);
        let mut s = Schedule::new(4);
        s.place(a, Time::ZERO, Time::from_int(2), 3);
        s.place(b, Time::from_int(2), Time::from_int(3), 3);
        assert!(s.validate(&inst).is_empty());
    }

    #[test]
    fn missing_and_mismatched_tasks_detected() {
        let inst = chain_instance();
        let g = inst.graph();
        let a = g.find_by_label("a").unwrap();
        let mut s = Schedule::new(4);
        s.place(a, Time::ZERO, Time::from_int(5), 2); // wrong duration
        let v = s.validate(&inst);
        assert!(v.iter().any(|x| matches!(x, Violation::SpecMismatch(t) if *t == a)));
        assert!(v.iter().any(|x| matches!(x, Violation::MissingTask(_))));
    }

    #[test]
    fn usage_profile_steps() {
        let mut s = Schedule::new(4);
        s.place(TaskId(0), Time::ZERO, Time::from_int(2), 1);
        s.place(TaskId(1), Time::from_int(1), Time::from_int(3), 2);
        let profile = s.usage_profile();
        assert_eq!(
            profile,
            vec![
                (Time::ZERO, 1),
                (Time::from_int(1), 3),
                (Time::from_int(2), 2),
                (Time::from_int(3), 0),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_place_panics() {
        let mut s = Schedule::new(2);
        s.place(TaskId(0), Time::ZERO, Time::ONE, 1);
        s.place(TaskId(0), Time::ONE, Time::from_int(2), 1);
    }

    #[test]
    fn equality_ignores_slot_capacity() {
        // Schedules with the same placements are equal even when their
        // dense slot vectors grew differently (e.g. out-of-order ids
        // left different trailing holes).
        let mut a = Schedule::new(4);
        a.place(TaskId(5), Time::ZERO, Time::ONE, 1);
        a.place(TaskId(1), Time::ZERO, Time::ONE, 1);
        let mut b = Schedule::new(4);
        b.place(TaskId(1), Time::ZERO, Time::ONE, 1);
        b.place(TaskId(5), Time::ZERO, Time::ONE, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Placement order out of the iterator is ascending id.
        let ids: Vec<TaskId> = a.placements().map(|p| p.task).collect();
        assert_eq!(ids, vec![TaskId(1), TaskId(5)]);
    }

    #[test]
    fn serde_wire_format_is_id_keyed_object() {
        let mut s = Schedule::new(3);
        s.place(TaskId(2), Time::ZERO, Time::from_int(2), 1);
        s.place(TaskId(0), Time::ONE, Time::from_int(3), 2);
        let json = serde_json::to_string(&s).unwrap();
        // The wire format is the legacy BTreeMap shape: an object keyed
        // by task id, ascending, under "placements".
        assert!(json.contains("\"procs\":3"), "{json}");
        let p0 = json.find("\"0\"").expect("id key 0");
        let p2 = json.find("\"2\"").expect("id key 2");
        assert!(p0 < p2, "keys must ascend: {json}");
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.makespan(), s.makespan());
    }
}
