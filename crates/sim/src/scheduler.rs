//! The online scheduler interface.
//!
//! The engine drives a scheduler through three callbacks. At every decision
//! point (time zero, and after each batch of simultaneous completions and
//! releases) it calls [`OnlineScheduler::decide`], which returns the tasks
//! to start *right now*. Returning an empty list is a legal and meaningful
//! move: it is the deliberate idling that the paper shows to be necessary
//! (no ASAP heuristic can be better than `Ω(P)`-competitive, Figure 1),
//! and it is how CatBatch holds back tasks of future categories.

use rigid_dag::{ReleasedTask, TaskId};
use rigid_time::Time;

/// An online scheduler for rigid task graphs.
///
/// Information flow honours the paper's online model: the scheduler only
/// ever hears about tasks through [`on_release`](Self::on_release), which
/// fires when the task becomes ready. The engine guarantees:
///
/// * `on_release(task)` precedes any other mention of `task`;
/// * `on_complete(task)` fires exactly once, after the task ran to
///   completion;
/// * `decide` may only start released, unstarted tasks whose combined
///   demand fits in the currently free processors (violations panic).
pub trait OnlineScheduler {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// A task just became ready (all predecessors complete). `now` is the
    /// current simulation time.
    fn on_release(&mut self, task: &ReleasedTask, now: Time);

    /// A task just completed.
    fn on_complete(&mut self, task: TaskId, now: Time);

    /// Asked at every decision point: which tasks should start now?
    /// `free_procs` processors are currently idle. The returned tasks are
    /// started simultaneously at `now`; their total demand must not exceed
    /// `free_procs`.
    fn decide(&mut self, now: Time, free_procs: u32) -> Vec<TaskId>;

    /// Buffer-reusing form of [`decide`](Self::decide): **appends** the
    /// chosen tasks to `out` instead of returning a fresh `Vec`. The
    /// engine calls this form with one buffer reused across the whole
    /// run, so a scheduler that overrides it allocates nothing per
    /// decision point. The default delegates to `decide`; overriders
    /// must preserve its contract exactly (the engine treats appending
    /// nothing as the deliberate-idling move).
    fn decide_into(&mut self, now: Time, free_procs: u32, out: &mut Vec<TaskId>) {
        out.extend(self.decide(now, free_procs));
    }

    /// A running attempt of `task` just failed (fail-stop under an active
    /// fault model); all its work is lost and it must be re-executed in
    /// full. Return [`FailureResponse::Retry`] to take the task back as
    /// ready (it may be started again from a later `decide`), or
    /// [`FailureResponse::Abandon`] to give up, which aborts the run with
    /// [`RunError::TaskAbandoned`](crate::RunError::TaskAbandoned).
    ///
    /// The default declines: schedulers are fault-oblivious unless they
    /// opt in.
    fn on_failure(&mut self, task: TaskId, now: Time) -> FailureResponse {
        let _ = (task, now);
        FailureResponse::Abandon
    }
}

/// A scheduler's answer to a failed task attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureResponse {
    /// Re-queue the task; the scheduler will start it again later.
    Retry,
    /// Give up on the task (aborts the run).
    Abandon,
}

impl<T: OnlineScheduler + ?Sized> OnlineScheduler for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn on_release(&mut self, task: &ReleasedTask, now: Time) {
        (**self).on_release(task, now)
    }
    fn on_complete(&mut self, task: TaskId, now: Time) {
        (**self).on_complete(task, now)
    }
    fn decide(&mut self, now: Time, free_procs: u32) -> Vec<TaskId> {
        (**self).decide(now, free_procs)
    }
    fn decide_into(&mut self, now: Time, free_procs: u32, out: &mut Vec<TaskId>) {
        (**self).decide_into(now, free_procs, out)
    }
    fn on_failure(&mut self, task: TaskId, now: Time) -> FailureResponse {
        (**self).on_failure(task, now)
    }
}

/// A scheduler together with run bookkeeping; used by generic harnesses.
pub trait SchedulerFactory {
    /// The scheduler type produced.
    type Scheduler: OnlineScheduler;
    /// Creates a fresh scheduler for a platform of `procs` processors.
    fn create(&self, procs: u32) -> Self::Scheduler;
}

impl<F, S> SchedulerFactory for F
where
    F: Fn(u32) -> S,
    S: OnlineScheduler,
{
    type Scheduler = S;
    fn create(&self, procs: u32) -> S {
        self(procs)
    }
}
