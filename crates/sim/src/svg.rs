//! SVG rendering of schedules — publication-quality counterparts of the
//! ASCII Gantt charts (the paper's Figures 1 and 6 are exactly this kind
//! of drawing).
//!
//! The output is a self-contained SVG document: one horizontal lane per
//! processor, one rectangle per task placement (processor rows assigned
//! by the same first-fit as [`assign`](crate::assign)), labels where they
//! fit, and a time axis. Colors rotate through a small palette keyed by
//! the task id so related runs stay comparable.

use crate::schedule::Schedule;
use rigid_dag::TaskGraph;
use rigid_time::Time;
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Total drawing width in pixels (time axis).
    pub width: u32,
    /// Height of one processor lane in pixels.
    pub lane_height: u32,
    /// Draw task labels.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            lane_height: 28,
            labels: true,
        }
    }
}

const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

/// Renders a schedule as an SVG document string.
pub fn render_svg(schedule: &Schedule, graph: &TaskGraph, opts: &SvgOptions) -> String {
    let makespan = schedule.makespan();
    let procs = schedule.procs() as usize;
    let margin_left = 46u32;
    let margin_top = 18u32;
    let axis_height = 26u32;
    let width = opts.width.max(100);
    let height = margin_top + opts.lane_height * procs as u32 + axis_height;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">"#,
        w = width + margin_left + 10,
        h = height
    );
    let _ = writeln!(
        out,
        r#"<rect x="0" y="0" width="{}" height="{height}" fill="white"/>"#,
        width + margin_left + 10
    );

    if schedule.is_empty() || makespan.is_zero() {
        let _ = writeln!(out, r#"<text x="10" y="20">(empty schedule)</text>"#);
        out.push_str("</svg>\n");
        return out;
    }

    let x_of = |t: Time| -> f64 { margin_left as f64 + t.ratio(makespan).to_f64() * width as f64 };

    // Lane separators and processor labels.
    for r in 0..=procs {
        let y = margin_top + opts.lane_height * r as u32;
        let _ = writeln!(
            out,
            r##"<line x1="{margin_left}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            margin_left + width
        );
        if r < procs {
            let _ = writeln!(
                out,
                r##"<text x="6" y="{}" fill="#555">p{}</text>"##,
                y + opts.lane_height / 2 + 4,
                procs - 1 - r
            );
        }
    }

    // First-fit row assignment (same as the ASCII renderer).
    let mut placements: Vec<_> = schedule.placements().collect();
    placements.sort_by_key(|p| (p.start, p.task));
    let mut row_free_until = vec![Time::ZERO; procs];
    for p in placements {
        let mut rows = Vec::with_capacity(p.procs as usize);
        for (r, free_at) in row_free_until.iter_mut().enumerate() {
            if *free_at <= p.start {
                rows.push(r);
                if rows.len() == p.procs as usize {
                    break;
                }
            }
        }
        assert_eq!(rows.len(), p.procs as usize, "capacity exceeded");
        let color = PALETTE[p.task.0 as usize % PALETTE.len()];
        let x = x_of(p.start);
        let w = (x_of(p.finish) - x).max(1.0);
        for &r in &rows {
            row_free_until[r] = p.finish;
            // Row 0 is drawn at the bottom (processor 0 lowest).
            let y = margin_top + opts.lane_height * (procs - 1 - r) as u32;
            let _ = writeln!(
                out,
                r##"<rect x="{x:.1}" y="{}" width="{w:.1}" height="{}" fill="{color}" stroke="#333" stroke-width="0.5" opacity="0.9"/>"##,
                y + 1,
                opts.lane_height - 2
            );
        }
        if opts.labels && w > 18.0 {
            let label = graph.spec(p.task).label_str();
            let name = if label.is_empty() {
                format!("{}", p.task)
            } else {
                label.to_string()
            };
            let top_row = rows.iter().max().expect("non-empty");
            let y = margin_top + opts.lane_height * (procs - 1 - top_row) as u32;
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{}" fill="white">{}</text>"#,
                x + 3.0,
                y + opts.lane_height / 2 + 4,
                xml_escape(&name)
            );
        }
    }

    // Time axis: 0 and the makespan.
    let axis_y = margin_top + opts.lane_height * procs as u32 + 14;
    let _ = writeln!(
        out,
        r##"<text x="{margin_left}" y="{axis_y}" fill="#333">0</text>"##
    );
    let _ = writeln!(
        out,
        r##"<text x="{}" y="{axis_y}" fill="#333" text-anchor="end">{}</text>"##,
        margin_left + width,
        xml_escape(&format!("{makespan}"))
    );
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigid_dag::{TaskGraph, TaskSpec};

    fn sample() -> (Schedule, TaskGraph) {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskSpec::new(Time::from_int(2), 2).with_label("A"));
        let b = g.add_task(TaskSpec::new(Time::from_int(1), 1).with_label("B"));
        let mut s = Schedule::new(3);
        s.place(a, Time::ZERO, Time::from_int(2), 2);
        s.place(b, Time::ZERO, Time::from_int(1), 1);
        (s, g)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (s, g) = sample();
        let svg = render_svg(&s, &g, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per (task, row) plus background: A uses 2 rows, B 1.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 3);
        assert!(svg.contains(">A<"));
        assert!(svg.contains(">B<"));
        // Balanced tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn empty_schedule_svg() {
        let svg = render_svg(&Schedule::new(2), &TaskGraph::new(), &SvgOptions::default());
        assert!(svg.contains("empty schedule"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn labels_escaped() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskSpec::new(Time::from_int(5), 1).with_label("a<b&c>"));
        let mut s = Schedule::new(1);
        s.place(a, Time::ZERO, Time::from_int(5), 1);
        let svg = render_svg(&s, &g, &SvgOptions::default());
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn real_run_renders() {
        use rigid_dag::gen::{erdos_dag, TaskSampler};
        let inst = erdos_dag(3, 20, 0.2, &TaskSampler::default_mix(), 4);
        let mut src = rigid_dag::StaticSource::new(inst.clone());
        // Trivial greedy.
        struct G(Vec<(rigid_dag::TaskId, u32)>);
        impl crate::OnlineScheduler for G {
            fn name(&self) -> &'static str {
                "g"
            }
            fn on_release(&mut self, t: &rigid_dag::ReleasedTask, _: Time) {
                self.0.push((t.id, t.spec.procs));
            }
            fn on_complete(&mut self, _: rigid_dag::TaskId, _: Time) {}
            fn decide(&mut self, _: Time, mut free: u32) -> Vec<rigid_dag::TaskId> {
                let mut out = Vec::new();
                self.0.retain(|&(id, p)| {
                    if p <= free {
                        free -= p;
                        out.push(id);
                        false
                    } else {
                        true
                    }
                });
                out
            }
        }
        let r = crate::engine::EngineConfig::new().run(&mut src, &mut G(Vec::new()));
        let svg = render_svg(&r.schedule, inst.graph(), &SvgOptions::default());
        assert!(svg.matches("<rect").count() > 20);
    }
}
