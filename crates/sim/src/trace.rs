//! Run traces: a serializable event log of one scheduling run.
//!
//! Traces capture what happened and when — releases, starts, completions
//! — in a form that external tools (plotters, replayers, regression
//! diffing) can consume as JSON via `serde`.

use crate::engine::RunResult;
use rigid_dag::TaskId;
use rigid_time::Time;
use serde::{Deserialize, Serialize};

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// The task became ready (visible to the scheduler).
    Released {
        /// The task.
        task: TaskId,
        /// When.
        at: Time,
    },
    /// The task started executing.
    Started {
        /// The task.
        task: TaskId,
        /// When.
        at: Time,
        /// Processors used.
        procs: u32,
    },
    /// The task completed.
    Completed {
        /// The task.
        task: TaskId,
        /// When.
        at: Time,
    },
}

impl Event {
    /// The event's instant.
    pub fn at(&self) -> Time {
        match self {
            Event::Released { at, .. } | Event::Started { at, .. } | Event::Completed { at, .. } => {
                *at
            }
        }
    }

    /// Sort rank within an instant: releases, then completions, then
    /// starts (matching the engine's processing order at one instant —
    /// completions free processors that the next starts reuse; releases
    /// at an instant precede the decisions taken there).
    fn rank(&self) -> u8 {
        match self {
            Event::Completed { .. } => 0,
            Event::Released { .. } => 1,
            Event::Started { .. } => 2,
        }
    }
}

/// A complete, time-ordered run trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Builds the trace of a finished run.
    pub fn from_run(result: &RunResult) -> Self {
        let mut events = Vec::with_capacity(result.schedule.len() * 3);
        for (&task, &at) in &result.release_times {
            events.push(Event::Released { task, at });
        }
        for p in result.schedule.placements() {
            events.push(Event::Started {
                task: p.task,
                at: p.start,
                procs: p.procs,
            });
            events.push(Event::Completed {
                task: p.task,
                at: p.finish,
            });
        }
        events.sort_by(|a, b| {
            a.at()
                .cmp(&b.at())
                .then(a.rank().cmp(&b.rank()))
                .then_with(|| task_of(a).cmp(&task_of(b)))
        });
        Trace { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events (3 per task: release, start, completion).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consistency check: every task is released before it starts and
    /// starts before it completes.
    pub fn is_causal(&self) -> bool {
        use std::collections::HashMap;
        #[derive(Default)]
        struct St {
            released: bool,
            started: bool,
            completed: bool,
        }
        let mut st: HashMap<TaskId, St> = HashMap::new();
        for e in &self.events {
            let entry = st.entry(task_of(e)).or_default();
            match e {
                Event::Released { .. } => {
                    if entry.released {
                        return false;
                    }
                    entry.released = true;
                }
                Event::Started { .. } => {
                    if !entry.released || entry.started {
                        return false;
                    }
                    entry.started = true;
                }
                Event::Completed { .. } => {
                    if !entry.started || entry.completed {
                        return false;
                    }
                    entry.completed = true;
                }
            }
        }
        st.values().all(|s| s.completed)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Parses a JSON trace.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

fn task_of(e: &Event) -> TaskId {
    match e {
        Event::Released { task, .. } | Event::Started { task, .. } | Event::Completed { task, .. } => {
            *task
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigid_dag::gen::{erdos_dag, TaskSampler};
    use rigid_dag::{DagBuilder, StaticSource};

    fn run_chain() -> RunResult {
        let inst = DagBuilder::new()
            .task("a", Time::from_int(1), 1)
            .task("b", Time::from_int(2), 1)
            .edge("a", "b")
            .build(2);
        crate::engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut greedy())
    }

    #[test]
    fn trace_is_ordered_and_causal() {
        let trace = Trace::from_run(&run_chain());
        assert_eq!(trace.len(), 6);
        assert!(trace.is_causal());
        for w in trace.events().windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn json_roundtrip() {
        let trace = Trace::from_run(&run_chain());
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.events(), trace.events());
    }

    #[test]
    fn traces_of_random_runs_are_causal() {
        for seed in 0..5u64 {
            let inst = erdos_dag(seed, 25, 0.2, &TaskSampler::default_mix(), 4);
            let r = crate::engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut greedy());
            assert!(Trace::from_run(&r).is_causal(), "seed {seed}");
        }
    }

    fn greedy() -> impl crate::OnlineScheduler {
        struct G(Vec<(TaskId, u32)>);
        impl crate::OnlineScheduler for G {
            fn name(&self) -> &'static str {
                "g"
            }
            fn on_release(&mut self, t: &rigid_dag::ReleasedTask, _: Time) {
                self.0.push((t.id, t.spec.procs));
            }
            fn on_complete(&mut self, _: TaskId, _: Time) {}
            fn decide(&mut self, _: Time, mut free: u32) -> Vec<TaskId> {
                let mut out = Vec::new();
                self.0.retain(|&(id, p)| {
                    if p <= free {
                        free -= p;
                        out.push(id);
                        false
                    } else {
                        true
                    }
                });
                out
            }
        }
        G(Vec::new())
    }
}
