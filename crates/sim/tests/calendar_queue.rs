//! Differential proptests: the dyadic radix [`CalendarQueue`] must pop
//! **byte-identical** event sequences to the comparison-based
//! [`EventHeap`] oracle on adversarial streams — duplicate timestamps,
//! off-grid rationals that take the overflow heap, extreme exponents
//! that stress the high radix buckets, and arbitrary push/pop
//! interleavings (including pushes behind the popped frontier, which
//! the engine never produces but the queue must survive).
//!
//! Because the `(at, seq, id)` key is unique per event, any correct
//! priority queue pops the same sequence; these tests are what lets the
//! engine swap queue implementations without a bit of output changing.

use proptest::prelude::*;
use rigid_dag::TaskId;
use rigid_sim::calendar::{CalendarQueue, Event, EventHeap};
use rigid_time::Time;

/// One element of a generated stream: push event #k, or pop once.
#[derive(Clone, Debug)]
enum Op {
    Push(Event),
    Pop,
}

/// Builds one adversarial `Time` from a drawn `(kind, m, e, d)` tuple:
/// duplicate-prone dense dyadic grids, wide exponent ranges, the key's
/// coverage edges, oversized mantissas, and off-grid rationals.
fn mixed_time(kind: u8, m: i64, e: i32, d: i64) -> Time {
    match kind {
        // Dense dyadic grid — many duplicate timestamps.
        0 | 1 => Time::from_ratio(m % 16, 1i64 << (e.unsigned_abs() % 4)),
        // Wide exponent range, stressing bucket settling.
        2 => Time::from_dyadic(m, e % 50),
        // Extreme exponents at the key's coverage edge.
        3 => Time::from_dyadic(1 + m % 3, [-126, -125, 120][e.rem_euclid(3) as usize]),
        // 57-bit and oversized mantissas (the latter overflow the key
        // and take the exact overflow path despite being dyadic).
        4 => Time::from_dyadic((1i64 << 56) | (1 << (m % 8)), -30),
        5 => Time::from_dyadic(i64::MAX - m, 0),
        // Off-grid rationals — the exact-`Rational` overflow path.
        6 => Time::from_ratio(m % 1_000, d),
        _ => Time::ZERO,
    }
}

fn arb_times(max_len: usize) -> impl Strategy<Value = Vec<Time>> {
    prop::collection::vec(
        (0u8..8, 0i64..1_000_000, -126i32..121, 1i64..100),
        0..max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, m, e, d)| mixed_time(kind, m, e, d))
            .collect()
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // kind 8 and 9 are pops; the rest push a mixed-time event.
    prop::collection::vec(
        (0u8..10, 0i64..1_000_000, -126i32..121, 1i64..100),
        0..200,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, m, e, d))| {
                if kind >= 8 {
                    Op::Pop
                } else {
                    Op::Push(Event {
                        at: mixed_time(kind, m, e, d),
                        seq: i as u64,
                        id: TaskId(i as u32),
                        procs: 1 + (i as u32 % 7),
                        fails: i % 5 == 0,
                    })
                }
            })
            .collect()
    })
}

proptest! {
    /// Push-all-pop-all: the calendar's full drain equals the heap's.
    #[test]
    fn drain_order_identical(times in arb_times(300)) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventHeap::default();
        for (i, &at) in times.iter().enumerate() {
            let e = Event {
                at,
                seq: i as u64,
                id: TaskId(i as u32),
                procs: 1,
                fails: false,
            };
            cal.push(e);
            heap.push(e);
        }
        prop_assert_eq!(cal.len(), times.len());
        loop {
            let want = heap.pop();
            prop_assert_eq!(cal.peek().copied(), want.clone());
            prop_assert_eq!(cal.pop(), want.clone());
            if want.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
        prop_assert_eq!(cal.pushes(), times.len() as u64);
        prop_assert_eq!(cal.pops(), times.len() as u64);
    }

    /// Arbitrary interleavings of pushes and pops stay identical, and a
    /// reused (cleared) queue behaves exactly like a fresh one.
    #[test]
    fn interleaved_ops_identical(ops in arb_ops()) {
        let mut cal = CalendarQueue::new();
        cal.push(Event {
            at: Time::from_int(1_000_000),
            seq: u64::MAX,
            id: TaskId(u32::MAX),
            procs: 1,
            fails: false,
        });
        cal.clear();
        let mut heap = EventHeap::default();
        for op in &ops {
            match op {
                Op::Push(e) => {
                    cal.push(*e);
                    heap.push(*e);
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        while let Some(want) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(want));
        }
        prop_assert!(cal.is_empty());
    }

    /// Cohort draining partitions the stream by timestamp: each batch
    /// holds exactly the events at one instant, in `seq` order, and the
    /// concatenation equals the heap's pop order.
    #[test]
    fn cohorts_partition_by_timestamp(times in arb_times(200)) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventHeap::default();
        for (i, &at) in times.iter().enumerate() {
            let e = Event {
                at,
                seq: i as u64,
                id: TaskId(i as u32),
                procs: 1,
                fails: false,
            };
            cal.push(e);
            heap.push(e);
        }
        let mut cohort = Vec::new();
        let mut last_at: Option<Time> = None;
        let mut drained = 0usize;
        while let Some(at) = cal.pop_cohort_into(&mut cohort) {
            // Strictly increasing batch timestamps.
            if let Some(prev) = last_at {
                prop_assert!(at > prev);
            }
            last_at = Some(at);
            prop_assert!(!cohort.is_empty());
            for e in &cohort {
                prop_assert_eq!(e.at, at);
                let want = heap.pop().expect("heap has the same events");
                prop_assert_eq!(*e, want);
            }
            drained += cohort.len();
        }
        prop_assert_eq!(drained, times.len());
        prop_assert!(heap.pop().is_none());
    }

    /// The fallback counter is exact: it equals the number of pushed
    /// timestamps without a dyadic key (the engine's pure-dyadic
    /// scenarios must therefore report zero).
    #[test]
    fn fallback_count_matches_unkeyable_times(times in arb_times(200)) {
        let mut cal = CalendarQueue::new();
        let unkeyable = times.iter().filter(|t| t.dyadic_key().is_none()).count();
        for (i, &at) in times.iter().enumerate() {
            cal.push(Event {
                at,
                seq: i as u64,
                id: TaskId(i as u32),
                procs: 1,
                fails: false,
            });
        }
        // Push-all-then-pop never retreats the frontier, so the only
        // fallbacks are the unkeyable timestamps themselves.
        prop_assert_eq!(cal.fallbacks(), unkeyable as u64);
    }
}
