//! Differential tests: the event-driven engine ([`rigid_sim::engine`])
//! and the frozen pre-refactor stepping engine ([`rigid_sim::reference`])
//! must produce **identical** `RunResult`s — schedules, revealed graphs,
//! release times, decision counts, and fault logs — on random DAGs with
//! random fault schedules.
//!
//! The schedulers are defined locally (a FIFO greedy and a
//! priority-sensitive longest-first) so this test does not depend on the
//! `rigid-baselines` crate; the priority scheduler makes the comparison
//! sensitive to event *ordering*, not just event *sets*, because a
//! permuted completion order would reorder releases and flip its picks.

// The deprecated free-function entry points are kept precisely for this
// harness: they pin the legacy call signatures against the reference
// engine while the rest of the workspace moves to `EngineConfig`.
#![allow(deprecated)]

use proptest::prelude::*;
use rigid_dag::gen::{self, LengthDist, ProcDist, TaskSampler};
use rigid_dag::{Instance, ReleasedTask, StaticSource, TaskId};
use rigid_sim::fault::{Attempt, FaultModel};
use rigid_sim::{engine, reference, FailureResponse, OnlineScheduler, RunBudget, RunError, RunResult};
use rigid_time::Time;

/// FIFO greedy: start anything that fits, in release order; retries
/// failed tasks at the back of the queue.
struct Fifo {
    queue: Vec<(TaskId, u32)>,
    widths: Vec<(TaskId, u32)>,
}

impl Fifo {
    fn new() -> Self {
        Fifo { queue: Vec::new(), widths: Vec::new() }
    }
}

impl OnlineScheduler for Fifo {
    fn name(&self) -> &'static str {
        "diff-fifo"
    }
    fn on_release(&mut self, t: &ReleasedTask, _now: Time) {
        self.queue.push((t.id, t.spec.procs));
        self.widths.push((t.id, t.spec.procs));
    }
    fn on_complete(&mut self, _t: TaskId, _now: Time) {}
    fn decide(&mut self, _now: Time, mut free: u32) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.queue.retain(|&(id, p)| {
            if p <= free {
                free -= p;
                out.push(id);
                false
            } else {
                true
            }
        });
        out
    }
    fn on_failure(&mut self, t: TaskId, _now: Time) -> FailureResponse {
        let w = self
            .widths
            .iter()
            .find(|(id, _)| *id == t)
            .expect("failed task was released")
            .1;
        self.queue.push((t, w));
        FailureResponse::Retry
    }
}

/// Longest-first greedy: keeps the ready list sorted by descending
/// duration (ties by id). Its picks depend on the *order* releases
/// arrive within an instant, so it detects event-ordering divergence
/// between the engines.
struct LongestFirst {
    ready: Vec<(Time, TaskId, u32)>,
}

impl LongestFirst {
    fn new() -> Self {
        LongestFirst { ready: Vec::new() }
    }
    fn insert(&mut self, t: Time, id: TaskId, p: u32) {
        let pos = self
            .ready
            .iter()
            .position(|&(ot, oid, _)| (ot, std::cmp::Reverse(oid)) < (t, std::cmp::Reverse(id)))
            .unwrap_or(self.ready.len());
        self.ready.insert(pos, (t, id, p));
    }
}

impl OnlineScheduler for LongestFirst {
    fn name(&self) -> &'static str {
        "diff-longest"
    }
    fn on_release(&mut self, task: &ReleasedTask, _now: Time) {
        self.insert(task.spec.time, task.id, task.spec.procs);
    }
    fn on_complete(&mut self, _t: TaskId, _now: Time) {}
    fn decide(&mut self, _now: Time, mut free: u32) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.ready.retain(|&(_, id, p)| {
            if p <= free {
                free -= p;
                out.push(id);
                false
            } else {
                true
            }
        });
        out
    }
    fn on_failure(&mut self, _t: TaskId, _now: Time) -> FailureResponse {
        // Longest-first abandons on failure; the differential check then
        // compares the typed errors instead of the results.
        FailureResponse::Abandon
    }
}

/// A deterministic pseudo-random fault schedule: a splitmix64 hash of
/// `(seed, task, attempt)` decides each attempt's fate. First attempts
/// may fail (at half nominal) or straggle (×2); retries always complete
/// so runs terminate.
struct HashFaults {
    seed: u64,
    fail_mod: u64,
    inflate_mod: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultModel for HashFaults {
    fn on_start(
        &mut self,
        task: TaskId,
        attempt: u32,
        _now: Time,
        nominal: Time,
        _procs: u32,
    ) -> Attempt {
        if attempt > 0 {
            return Attempt::Complete;
        }
        let h = splitmix64(self.seed ^ ((task.0 as u64) << 32) ^ attempt as u64);
        if self.fail_mod > 0 && h.is_multiple_of(self.fail_mod) {
            Attempt::Fail { after: nominal.div_int(2) }
        } else if self.inflate_mod > 0 && (h >> 8).is_multiple_of(self.inflate_mod) {
            Attempt::Inflated { actual: nominal.mul_int(2) }
        } else {
            Attempt::Complete
        }
    }
}

fn assert_identical(new: &RunResult, old: &RunResult) {
    assert_eq!(new.schedule, old.schedule, "schedules diverge");
    assert_eq!(new.revealed, old.revealed, "revealed graphs diverge");
    assert_eq!(new.revealed_ids, old.revealed_ids, "id maps diverge");
    assert_eq!(new.procs, old.procs);
    assert_eq!(new.release_times, old.release_times, "release times diverge");
    assert_eq!(new.decisions, old.decisions, "decision counts diverge");
    assert_eq!(new.faults, old.faults, "fault logs diverge");
}

/// Runs both engines on fresh copies of the same instance + scheduler +
/// fault schedule and asserts bit-identical outcomes (or identical
/// typed errors).
fn check_instance(inst: &Instance, fault_seed: u64, fail_mod: u64, inflate_mod: u64) {
    for sched_kind in 0..2 {
        let mut new_sched: Box<dyn OnlineScheduler> = if sched_kind == 0 {
            Box::new(Fifo::new())
        } else {
            Box::new(LongestFirst::new())
        };
        let mut old_sched: Box<dyn OnlineScheduler> = if sched_kind == 0 {
            Box::new(Fifo::new())
        } else {
            Box::new(LongestFirst::new())
        };
        let mut budget_sched: Box<dyn OnlineScheduler> = if sched_kind == 0 {
            Box::new(Fifo::new())
        } else {
            Box::new(LongestFirst::new())
        };
        let mut new_faults = HashFaults { seed: fault_seed, fail_mod, inflate_mod };
        let mut old_faults = HashFaults { seed: fault_seed, fail_mod, inflate_mod };
        let mut budget_faults = HashFaults { seed: fault_seed, fail_mod, inflate_mod };
        let new = engine::try_run_faulty(
            &mut StaticSource::new(inst.clone()),
            new_sched.as_mut(),
            &mut new_faults,
        );
        let old = reference::try_run_faulty(
            &mut StaticSource::new(inst.clone()),
            old_sched.as_mut(),
            &mut old_faults,
        );
        // Below an ample budget the budgeted entry point must agree with
        // the frozen reference engine bit for bit as well.
        let budgeted = engine::try_run_budgeted(
            &mut StaticSource::new(inst.clone()),
            budget_sched.as_mut(),
            &mut budget_faults,
            RunBudget::max_events(u64::MAX),
        );
        match (new, old, budgeted) {
            (Ok(new), Ok(old), Ok(budgeted)) => {
                assert_identical(&new, &old);
                assert_identical(&budgeted, &old);
            }
            (Err(new), Err(old), Err(budgeted)) => {
                assert_eq!(new, old, "engines disagree on the typed error");
                assert_eq!(budgeted, old, "budgeted engine disagrees on the typed error");
            }
            (new, old, budgeted) => panic!(
                "engines disagree on success: new = {:?}, old = {:?}, budgeted = {:?}",
                new.map(|r| r.makespan()),
                old.map(|r| r.makespan()),
                budgeted.map(|r| r.makespan()),
            ),
        }
    }
}

fn sampler(kind: u8) -> TaskSampler {
    match kind % 4 {
        0 => TaskSampler::default_mix(),
        1 => TaskSampler {
            length: LengthDist::Uniform { min: 0.5, max: 4.0 },
            procs: ProcDist::PowersOfTwo,
        },
        2 => TaskSampler {
            length: LengthDist::LogUniform { min: 0.1, max: 10.0 },
            procs: ProcDist::FractionCap { q: 0.5 },
        },
        // Mixed representations: the snapped distributions above only
        // ever produce dyadic times, so this branch deliberately mixes
        // non-dyadic rationals (1/3, 5/7) with on-grid values to drive
        // the engines through `Time`'s rational fallback and the
        // dyadic/rational comparison boundary.
        _ => TaskSampler {
            length: LengthDist::Choice(vec![
                Time::from_ratio(1, 3),
                Time::from_ratio(5, 7),
                Time::from_ratio(3, 4),
                Time::from_int(2),
            ]),
            procs: ProcDist::PowersOfTwo,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free equivalence across every generator family.
    #[test]
    fn engines_agree_fault_free(
        seed in 0u64..u64::MAX,
        n in 5usize..60,
        procs in 2u32..24,
        kind in 0u8..=255,
    ) {
        let s = sampler(kind);
        for (_, inst) in gen::family(seed, n, &s, procs) {
            check_instance(&inst, 0, 0, 0);
        }
    }

    /// Equivalence under pseudo-random fail-stop + straggler schedules.
    #[test]
    fn engines_agree_under_faults(
        seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        n in 5usize..40,
        procs in 2u32..16,
        fail_mod in 2u64..6,
        inflate_mod in 2u64..6,
        kind in 0u8..=255,
    ) {
        let s = sampler(kind);
        let inst = gen::layered(seed, n.div_ceil(6).max(1), 6, &s, procs);
        check_instance(&inst, fault_seed, fail_mod, inflate_mod);
        let inst = gen::erdos_dag(seed, n, 0.15, &s, procs);
        check_instance(&inst, fault_seed, fail_mod, inflate_mod);
    }
}

/// A fixed large-ish case so equivalence is also witnessed outside the
/// proptest shrink universe (and on every `cargo test` without flags).
#[test]
fn engines_agree_on_large_fixed_instance() {
    let s = TaskSampler::default_mix();
    let inst = gen::chains(7, 16, 60, &s, 48);
    check_instance(&inst, 0xfeed, 5, 4);
    let inst = gen::layered(11, 30, 25, &s, 64);
    check_instance(&inst, 0xbeef, 7, 3);
}

/// The paper's Figure 3 instance, with the real CatBatch semantics
/// stand-in (longest-first is enough to exercise ordering); the engines
/// must agree on the exact makespan and every placement.
#[test]
fn engines_agree_on_paper_example() {
    let inst = rigid_dag::paper::figure3();
    check_instance(&inst, 0, 0, 0);
}

/// A budget tight enough to trip cuts the run off with a typed
/// `BudgetExceeded` where the unbudgeted reference engine completes —
/// the budget changes the outcome, never the semantics below it.
#[test]
fn tight_budget_trips_where_reference_completes() {
    let inst = rigid_dag::paper::figure3();
    let reference = reference::try_run_faulty(
        &mut StaticSource::new(inst.clone()),
        &mut Fifo::new(),
        &mut HashFaults { seed: 0, fail_mod: 0, inflate_mod: 0 },
    )
    .expect("reference run completes");
    let total_events = inst.graph().len() as u64 * 2; // releases + completions
    let err = engine::try_run_budgeted(
        &mut StaticSource::new(inst.clone()),
        &mut Fifo::new(),
        &mut HashFaults { seed: 0, fail_mod: 0, inflate_mod: 0 },
        RunBudget::max_events(total_events / 2),
    )
    .expect_err("halved event budget must trip");
    match err {
        RunError::BudgetExceeded { events, .. } => {
            assert!(events <= total_events);
            assert!(events > total_events / 2);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // And at exactly the full event count the budgeted run matches the
    // reference bit for bit.
    let at_limit = engine::try_run_budgeted(
        &mut StaticSource::new(inst),
        &mut Fifo::new(),
        &mut HashFaults { seed: 0, fail_mod: 0, inflate_mod: 0 },
        RunBudget::max_events(total_events),
    )
    .expect("budget equal to the event count must not trip");
    assert_identical(&at_limit, &reference);
}
