//! Engine edge cases: one-processor platforms, instant storms, timed
//! arrival interleavings, Gantt/assign/trace consistency.

use rigid_dag::source::TimedSource;
use rigid_dag::{DagBuilder, ReleasedTask, StaticSource, TaskId, TaskSpec};
use rigid_sim::gantt::{render, GanttOptions};
use rigid_sim::{assign, engine, metrics, trace::Trace, OnlineScheduler};
use rigid_time::Time;

/// Minimal greedy used throughout.
struct Greedy(Vec<(TaskId, u32)>);
impl Greedy {
    fn new() -> Self {
        Greedy(Vec::new())
    }
}
impl OnlineScheduler for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn on_release(&mut self, t: &ReleasedTask, _: Time) {
        self.0.push((t.id, t.spec.procs));
    }
    fn on_complete(&mut self, _: TaskId, _: Time) {}
    fn decide(&mut self, _: Time, mut free: u32) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.0.retain(|&(id, p)| {
            if p <= free {
                free -= p;
                out.push(id);
                false
            } else {
                true
            }
        });
        out
    }
}

#[test]
fn single_processor_serializes_everything() {
    let inst = DagBuilder::new()
        .task("a", Time::from_int(1), 1)
        .task("b", Time::from_int(2), 1)
        .task("c", Time::from_int(3), 1)
        .build(1);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut Greedy::new());
    r.schedule.assert_valid(&inst);
    assert_eq!(r.makespan(), Time::from_int(6));
    // Usage never exceeds 1 and never has overlap.
    for (_, used) in r.schedule.usage_profile() {
        assert!(used <= 1);
    }
}

#[test]
fn many_tasks_completing_at_one_instant() {
    // 16 equal tasks on 16 processors: one giant completion storm.
    let mut g = rigid_dag::TaskGraph::new();
    for _ in 0..16 {
        g.add_task(TaskSpec::new(Time::from_int(2), 1));
    }
    let tail = g.add_task(TaskSpec::new(Time::ONE, 16));
    for id in g.task_ids().take(16).collect::<Vec<_>>() {
        if id != tail {
            g.add_edge(id, tail);
        }
    }
    let inst = rigid_dag::Instance::new(g, 16);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut Greedy::new());
    r.schedule.assert_valid(&inst);
    assert_eq!(r.makespan(), Time::from_int(3));
    assert_eq!(r.release_times[&tail], Time::from_int(2));
}

#[test]
fn timed_arrivals_interleave_with_completions() {
    // Arrivals at 0, 1, 2, 3 of unit tasks on one processor: back-to-back.
    let jobs: Vec<(Time, TaskSpec)> = (0..4)
        .map(|k| (Time::from_int(k), TaskSpec::new(Time::ONE, 1)))
        .collect();
    let mut src = TimedSource::new(jobs, 1);
    let r = engine::EngineConfig::new().run(&mut src, &mut Greedy::new());
    assert_eq!(r.makespan(), Time::from_int(4));
    for k in 0..4u32 {
        assert_eq!(
            r.schedule.placement(TaskId(k)).unwrap().start,
            Time::from_int(k as i64)
        );
    }
}

#[test]
fn timed_arrival_exactly_at_completion() {
    // A completion at t=2 and an arrival at t=2 must land in the same
    // decision round (the arrival starts immediately).
    let jobs = vec![
        (Time::ZERO, TaskSpec::new(Time::from_int(2), 1)),
        (Time::from_int(2), TaskSpec::new(Time::ONE, 1)),
    ];
    let mut src = TimedSource::new(jobs, 1);
    let r = engine::EngineConfig::new().run(&mut src, &mut Greedy::new());
    assert_eq!(
        r.schedule.placement(TaskId(1)).unwrap().start,
        Time::from_int(2)
    );
    assert_eq!(r.makespan(), Time::from_int(3));
}

#[test]
fn gantt_assign_trace_agree() {
    let inst = rigid_dag::gen::layered(
        13,
        5,
        5,
        &rigid_dag::gen::TaskSampler::default_mix(),
        6,
    );
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut Greedy::new());
    // Gantt renders one row per processor plus the axis.
    let gantt = render(&r.schedule, inst.graph(), &GanttOptions::default());
    assert_eq!(gantt.lines().count(), 7);
    // Assignment covers every task with the right cardinality.
    let a = assign::assign(&r.schedule);
    assert!(a.validate(&r.schedule));
    for p in r.schedule.placements() {
        assert_eq!(a.processors(p.task).unwrap().len(), p.procs as usize);
    }
    // Trace has exactly 3 events per task and is causal.
    let t = Trace::from_run(&r);
    assert_eq!(t.len(), inst.len() * 3);
    assert!(t.is_causal());
}

#[test]
fn idle_intervals_of_deliberate_wait() {
    // A scheduler that refuses to overlap tasks: idle gaps appear.
    struct OneAtATime {
        queue: Vec<TaskId>,
        running: bool,
    }
    impl OnlineScheduler for OneAtATime {
        fn name(&self) -> &'static str {
            "one-at-a-time"
        }
        fn on_release(&mut self, t: &ReleasedTask, _: Time) {
            self.queue.push(t.id);
        }
        fn on_complete(&mut self, _: TaskId, _: Time) {
            self.running = false;
        }
        fn decide(&mut self, _: Time, _: u32) -> Vec<TaskId> {
            if self.running || self.queue.is_empty() {
                Vec::new()
            } else {
                self.running = true;
                vec![self.queue.remove(0)]
            }
        }
    }
    let inst = DagBuilder::new()
        .task("x", Time::from_int(1), 1)
        .task("y", Time::from_int(1), 1)
        .build(4);
    let r = engine::EngineConfig::new().run(
        &mut StaticSource::new(inst.clone()),
        &mut OneAtATime {
            queue: Vec::new(),
            running: false,
        },
    );
    // Sequential even though they could overlap; no full idle gaps
    // though (one task always runs).
    assert_eq!(r.makespan(), Time::from_int(2));
    assert!(metrics::idle_intervals(&r.schedule).is_empty());
}

#[test]
fn decisions_counter_reflects_consultations() {
    let inst = DagBuilder::new().task("a", Time::ONE, 1).build(1);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut Greedy::new());
    // At least: initial decide (start) + post-start empty decide.
    assert!(r.decisions >= 2);
}
