//! CatBatch-Strip: the online strip-packing variant of CatBatch
//! (the paper's Remark 1).
//!
//! Identical category batching, but inside each batch the greedy
//! `ScheduleIndep` is replaced by NFDH so every task receives a
//! **contiguous** processor interval `[x, x+w)`. Shelves of a batch run
//! one after another (shelf `k+1` starts when shelf `k`'s tallest — and
//! therefore last — task completes), which realizes the NFDH geometry in
//! time. Remark 1's analysis carries over: per batch the height is at
//! most `2·area/P + L_ζ`, so the Theorem 1/2 competitive ratios hold for
//! online strip packing with precedence constraints too.

use crate::packing::{PlacedRect, StripPacking};
use crate::shelf_pack::Rect;
use catbatch::category::{compute_category, Category};
use catbatch::CriticalityTracker;
use rigid_dag::{ReleasedTask, TaskId};
use rigid_sim::OnlineScheduler;
use rigid_time::Time;
use std::collections::BTreeMap;

/// One shelf awaiting execution: tasks with committed x-positions.
struct Shelf {
    tasks: Vec<(TaskId, u32, u32)>, // (id, x, width)
}

struct CurrentBatch {
    shelves: Vec<Shelf>,
    next_shelf: usize,
    running: usize,
}

/// The online CatBatch-Strip scheduler.
///
/// After a run, [`packing`](CatBatchStrip::packing) returns the committed
/// contiguous packing (y-coordinates are the actual start instants).
pub struct CatBatchStrip {
    procs: u32,
    tracker: CriticalityTracker,
    batches: BTreeMap<Category, Vec<Rect>>,
    current: Option<CurrentBatch>,
    packing: StripPacking,
    specs: BTreeMap<TaskId, Time>,
}

impl CatBatchStrip {
    /// Creates a CatBatch-Strip scheduler for a strip of width `procs`.
    pub fn new(procs: u32) -> Self {
        CatBatchStrip {
            procs,
            tracker: CriticalityTracker::new(),
            batches: BTreeMap::new(),
            current: None,
            packing: StripPacking::new(procs),
            specs: BTreeMap::new(),
        }
    }

    /// The contiguous packing committed so far (complete after the run).
    pub fn packing(&self) -> &StripPacking {
        &self.packing
    }

    /// Packs a batch with NFDH, producing shelves with x-positions.
    fn pack_batch(&self, mut rects: Vec<Rect>) -> Vec<Shelf> {
        rects.sort_by_key(|r| std::cmp::Reverse(r.height));
        let mut shelves: Vec<Shelf> = Vec::new();
        let mut cursor: u32 = 0;
        for r in rects {
            assert!(r.width <= self.procs);
            let fits_current = !shelves.is_empty() && cursor + r.width <= self.procs;
            if !fits_current {
                shelves.push(Shelf { tasks: Vec::new() });
                cursor = 0;
            }
            let shelf = shelves.last_mut().expect("just ensured");
            shelf.tasks.push((r.id, cursor, r.width));
            cursor += r.width;
        }
        shelves
    }
}

impl OnlineScheduler for CatBatchStrip {
    fn name(&self) -> &'static str {
        "catbatch-strip"
    }

    fn on_release(&mut self, task: &ReleasedTask, _now: Time) {
        let crit = self.tracker.on_release(task);
        let cat = compute_category(crit.start, crit.finish);
        self.specs.insert(task.id, task.spec.time);
        self.batches.entry(cat).or_default().push(Rect {
            id: task.id,
            width: task.spec.procs,
            height: task.spec.time,
        });
    }

    fn on_complete(&mut self, _task: TaskId, _now: Time) {
        let cur = self.current.as_mut().expect("completion outside batch");
        assert!(cur.running > 0);
        cur.running -= 1;
        if cur.running == 0 && cur.next_shelf >= cur.shelves.len() {
            self.current = None;
        }
    }

    fn decide(&mut self, now: Time, free: u32) -> Vec<TaskId> {
        if self.current.is_none() {
            match self.batches.pop_first() {
                Some((_cat, rects)) => {
                    self.current = Some(CurrentBatch {
                        shelves: self.pack_batch(rects),
                        next_shelf: 0,
                        running: 0,
                    });
                }
                None => return Vec::new(),
            }
        }
        let cur = self.current.as_mut().expect("just ensured");
        // A shelf starts only on an empty machine (shelf barrier). With
        // the machine idle, `free < P` can still happen under an engine
        // capacity dip — wait for recovery instead of asserting.
        if cur.running > 0 || cur.next_shelf >= cur.shelves.len() {
            return Vec::new();
        }
        if free < self.procs {
            return Vec::new();
        }
        let shelf = &cur.shelves[cur.next_shelf];
        cur.next_shelf += 1;
        cur.running = shelf.tasks.len();
        let mut out = Vec::with_capacity(shelf.tasks.len());
        for &(id, x, w) in &shelf.tasks {
            self.packing.place(PlacedRect {
                id,
                x,
                width: w,
                y: now,
                height: self.specs[&id],
            });
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigid_dag::gen::{erdos_dag, TaskSampler};
    use rigid_dag::paper::figure3;
    use rigid_dag::{analysis, StaticSource};
    use rigid_sim::engine;

    #[test]
    fn figure3_strip_run_is_contiguous_and_feasible() {
        let inst = figure3();
        let mut cbs = CatBatchStrip::new(inst.procs());
        let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
        result.schedule.assert_valid(&inst);
        cbs.packing().assert_valid();
        assert_eq!(cbs.packing().len(), inst.len());
        // The strip height equals the schedule makespan.
        assert_eq!(cbs.packing().height(), result.makespan());
    }

    #[test]
    fn strip_respects_lemma7_with_nfdh_constant() {
        // Remark 1: NFDH per batch gives height ≤ 2·area + max height per
        // batch, so the total is ≤ 2A/P + Σ L_ζ, same as Lemma 7.
        let inst = figure3();
        let bound = catbatch::analysis::lemma7_bound(&inst);
        let mut cbs = CatBatchStrip::new(inst.procs());
        let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
        assert!(result.makespan() <= bound);
    }

    #[test]
    fn random_dags_strip_valid() {
        for seed in 0..10u64 {
            let inst = erdos_dag(seed, 25, 0.15, &TaskSampler::default_mix(), 8);
            let mut cbs = CatBatchStrip::new(8);
            let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
            result.schedule.assert_valid(&inst);
            cbs.packing().assert_valid();
            // Theorem 1 ratio bound holds for the strip variant too.
            let ratio = result
                .makespan()
                .ratio(analysis::lower_bound(&inst))
                .to_f64();
            assert!(ratio <= (25f64).log2() + 3.0 + 1e-9, "seed {seed}: {ratio}");
        }
    }

    #[test]
    fn single_wide_task() {
        let inst = rigid_dag::DagBuilder::new()
            .task("w", Time::from_int(2), 4)
            .build(4);
        let mut cbs = CatBatchStrip::new(4);
        let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
        assert_eq!(result.makespan(), Time::from_int(2));
        let r = &cbs.packing().rects()[0];
        assert_eq!((r.x, r.width), (0, 4));
    }
}
