//! # rigid-strip — strip packing with precedence constraints
//!
//! The strip-packing side of the SPAA'25 CatBatch paper. Strip packing is
//! "rigid scheduling with contiguity": each task is a rectangle of width
//! `w` processors and height `t` time, placed at explicit coordinates
//! `[x, x+w) × [y, y+t)` in a strip of width `P`.
//!
//! * [`packing`] — placed rectangles with geometric (non-overlap)
//!   validation;
//! * [`shelf_pack`] — contiguous NFDH/FFDH shelf packers and the
//!   Bottom-Left skyline heuristic for independent rectangles;
//! * [`catbatch_strip`] — **CatBatch-Strip** (the paper's Remark 1): the
//!   online category-batch algorithm with NFDH inside each batch, giving
//!   contiguous allocations while preserving the `log₂(n) + O(1)`
//!   competitive ratio for online strip packing with precedence
//!   constraints.
//!
//! ```
//! use rigid_strip::CatBatchStrip;
//! use rigid_dag::{paper, StaticSource};
//! use rigid_sim::engine;
//!
//! let inst = paper::figure3();
//! let mut strip = CatBatchStrip::new(inst.procs());
//! let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut strip);
//! result.schedule.assert_valid(&inst);
//! strip.packing().assert_valid(); // geometrically contiguous, no overlap
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catbatch_strip;
pub mod packing;
pub mod shelf_pack;
pub mod svg;

pub use catbatch_strip::CatBatchStrip;
pub use packing::{PlacedRect, StripPacking, StripViolation};
pub use shelf_pack::Rect;

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rigid_dag::TaskId;
    use rigid_time::Time;

    fn arb_rects() -> impl Strategy<Value = Vec<Rect>> {
        prop::collection::vec((1u32..=8, 1i64..50), 1..40).prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (w, h))| Rect {
                    id: TaskId(i as u32),
                    width: w,
                    height: Time::from_int(h),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// NFDH packings are always geometrically valid and within the
        /// classic 2·area/W + h_max bound.
        #[test]
        fn nfdh_valid_and_bounded(rects in arb_rects()) {
            let w = 8u32;
            let mut p = StripPacking::new(w);
            let h = shelf_pack::nfdh(&rects, w, Time::ZERO, &mut p);
            prop_assert!(p.validate().is_empty());
            let area: Time = rects.iter().map(|r| r.height.mul_int(r.width as i64)).sum();
            let hmax = rects.iter().map(|r| r.height).max().unwrap();
            prop_assert!(h <= area.mul_int(2).div_int(w as i64) + hmax);
        }

        /// FFDH is valid and never taller than NFDH.
        #[test]
        fn ffdh_valid_not_worse(rects in arb_rects()) {
            let w = 8u32;
            let mut pn = StripPacking::new(w);
            let hn = shelf_pack::nfdh(&rects, w, Time::ZERO, &mut pn);
            let mut pf = StripPacking::new(w);
            let hf = shelf_pack::ffdh(&rects, w, Time::ZERO, &mut pf);
            prop_assert!(pf.validate().is_empty());
            prop_assert!(hf <= hn);
        }

        /// Bottom-Left is valid and at least area/W tall (sanity).
        #[test]
        fn bl_valid(rects in arb_rects()) {
            let w = 8u32;
            let mut p = StripPacking::new(w);
            let h = shelf_pack::bottom_left(&rects, w, &mut p);
            prop_assert!(p.validate().is_empty());
            let area: Time = rects.iter().map(|r| r.height.mul_int(r.width as i64)).sum();
            prop_assert!(h >= area.div_int(w as i64));
        }
    }
}
