//! Strip packings: rectangles with explicit coordinates and geometric
//! validation.
//!
//! Strip packing is the paper's sibling problem (Section 1): rectangles
//! of width `w` (processors, out of a strip of width `P`) and height `t`
//! (time) must be placed without overlap, minimizing the total height.
//! Unlike rigid scheduling, the processor interval must be **contiguous**:
//! a placement is `[x, x+w) × [y, y+t)`.

use rigid_dag::TaskId;
use rigid_time::Time;
use serde::{Deserialize, Serialize};

/// One placed rectangle.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedRect {
    /// Originating task.
    pub id: TaskId,
    /// Left edge: first processor index used.
    pub x: u32,
    /// Width: number of contiguous processors.
    pub width: u32,
    /// Bottom edge: start time.
    pub y: Time,
    /// Height: execution time.
    pub height: Time,
}

impl PlacedRect {
    /// Right edge (exclusive).
    pub fn x_end(&self) -> u32 {
        self.x + self.width
    }

    /// Top edge (exclusive).
    pub fn y_end(&self) -> Time {
        self.y + self.height
    }

    /// Returns `true` if the open interiors of two rectangles intersect.
    pub fn overlaps(&self, other: &PlacedRect) -> bool {
        self.x < other.x_end()
            && other.x < self.x_end()
            && self.y < other.y_end()
            && other.y < self.y_end()
    }
}

/// A complete strip packing in a strip of integer width `strip_width`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StripPacking {
    strip_width: u32,
    rects: Vec<PlacedRect>,
}

/// A geometric violation found by [`StripPacking::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StripViolation {
    /// Two rectangles overlap.
    Overlap(TaskId, TaskId),
    /// A rectangle pokes out of the strip.
    OutOfStrip(TaskId),
    /// A rectangle sits below y = 0.
    NegativeY(TaskId),
}

impl StripPacking {
    /// Creates an empty packing for a strip of the given width.
    pub fn new(strip_width: u32) -> Self {
        assert!(strip_width >= 1);
        StripPacking {
            strip_width,
            rects: Vec::new(),
        }
    }

    /// The strip width (`P`).
    pub fn strip_width(&self) -> u32 {
        self.strip_width
    }

    /// Adds a rectangle.
    pub fn place(&mut self, rect: PlacedRect) {
        self.rects.push(rect);
    }

    /// All rectangles.
    pub fn rects(&self) -> &[PlacedRect] {
        &self.rects
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Returns `true` if nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The packing height (max top edge).
    pub fn height(&self) -> Time {
        self.rects
            .iter()
            .map(|r| r.y_end())
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total rectangle area `Σ w·t`.
    pub fn area(&self) -> Time {
        self.rects
            .iter()
            .map(|r| r.height.mul_int(r.width as i64))
            .sum()
    }

    /// Geometric validation: inside the strip, above 0, pairwise
    /// non-overlapping.
    pub fn validate(&self) -> Vec<StripViolation> {
        let mut out = Vec::new();
        for r in &self.rects {
            if r.x_end() > self.strip_width {
                out.push(StripViolation::OutOfStrip(r.id));
            }
            if r.y.is_negative() {
                out.push(StripViolation::NegativeY(r.id));
            }
        }
        // Sweep by x-column would be faster; the O(n²) pairwise check is
        // fine at the sizes validated in tests.
        for (a_idx, a) in self.rects.iter().enumerate() {
            for b in &self.rects[a_idx + 1..] {
                if a.overlaps(b) {
                    out.push(StripViolation::Overlap(a.id, b.id));
                }
            }
        }
        out
    }

    /// Panicking validation for tests.
    pub fn assert_valid(&self) {
        let v = self.validate();
        assert!(v.is_empty(), "strip violations: {v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(id: u32, x: u32, w: u32, y: i64, h: i64) -> PlacedRect {
        PlacedRect {
            id: TaskId(id),
            x,
            width: w,
            y: Time::from_int(y),
            height: Time::from_int(h),
        }
    }

    #[test]
    fn non_overlapping_valid() {
        let mut p = StripPacking::new(4);
        p.place(rect(0, 0, 2, 0, 3));
        p.place(rect(1, 2, 2, 0, 3));
        p.place(rect(2, 0, 4, 3, 1));
        p.assert_valid();
        assert_eq!(p.height(), Time::from_int(4));
        assert_eq!(p.area(), Time::from_int(16));
    }

    #[test]
    fn overlap_detected() {
        let mut p = StripPacking::new(4);
        p.place(rect(0, 0, 3, 0, 2));
        p.place(rect(1, 2, 2, 1, 2));
        let v = p.validate();
        assert_eq!(v, vec![StripViolation::Overlap(TaskId(0), TaskId(1))]);
    }

    #[test]
    fn touching_edges_do_not_overlap() {
        let mut p = StripPacking::new(4);
        p.place(rect(0, 0, 2, 0, 2));
        p.place(rect(1, 2, 2, 0, 2)); // shares x edge
        p.place(rect(2, 0, 2, 2, 1)); // shares y edge
        p.assert_valid();
    }

    #[test]
    fn out_of_strip_detected() {
        let mut p = StripPacking::new(4);
        p.place(rect(0, 3, 2, 0, 1));
        assert_eq!(p.validate(), vec![StripViolation::OutOfStrip(TaskId(0))]);
    }
}
