//! Contiguous shelf packers for independent rectangles: NFDH and FFDH
//! with explicit coordinates, plus the Bottom-Left skyline heuristic.
//!
//! These are the strip-packing counterparts of the schedulers in
//! `rigid_baselines::shelf` — same shelf logic, but committing to actual
//! `[x, x+w)` processor intervals so contiguity is verifiable.

use crate::packing::{PlacedRect, StripPacking};
use rigid_dag::TaskId;
use rigid_time::Time;

/// An unplaced rectangle.
#[derive(Clone, Copy, Debug)]
pub struct Rect {
    /// Identifier.
    pub id: TaskId,
    /// Width (processors).
    pub width: u32,
    /// Height (time).
    pub height: Time,
}

/// Packs rectangles with Next-Fit Decreasing Height at `y_offset`,
/// returning the packing height used (above the offset).
pub fn nfdh(rects: &[Rect], strip_width: u32, y_offset: Time, out: &mut StripPacking) -> Time {
    shelf_pack(rects, strip_width, y_offset, out, false)
}

/// Packs rectangles with First-Fit Decreasing Height at `y_offset`.
pub fn ffdh(rects: &[Rect], strip_width: u32, y_offset: Time, out: &mut StripPacking) -> Time {
    shelf_pack(rects, strip_width, y_offset, out, true)
}

fn shelf_pack(
    rects: &[Rect],
    strip_width: u32,
    y_offset: Time,
    out: &mut StripPacking,
    first_fit: bool,
) -> Time {
    let mut items: Vec<Rect> = rects.to_vec();
    items.sort_by_key(|r| std::cmp::Reverse(r.height));
    struct Shelf {
        y: Time,
        x_cursor: u32,
    }
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut top = y_offset;
    for r in items {
        assert!(
            r.width <= strip_width,
            "rectangle {} wider than the strip",
            r.id
        );
        let slot = if first_fit {
            shelves
                .iter()
                .position(|s| s.x_cursor + r.width <= strip_width)
        } else {
            shelves
                .len()
                .checked_sub(1)
                .filter(|&i| shelves[i].x_cursor + r.width <= strip_width)
        };
        let idx = match slot {
            Some(i) => i,
            None => {
                shelves.push(Shelf {
                    y: top,
                    x_cursor: 0,
                });
                top += r.height;
                shelves.len() - 1
            }
        };
        let s = &mut shelves[idx];
        out.place(PlacedRect {
            id: r.id,
            x: s.x_cursor,
            width: r.width,
            y: s.y,
            height: r.height,
        });
        s.x_cursor += r.width;
    }
    top - y_offset
}

/// Bottom-Left placement over a skyline, processing rectangles in
/// decreasing width (Baker, Coffman and Rivest's BL heuristic — a
/// 3-approximation for independent rectangles).
pub fn bottom_left(rects: &[Rect], strip_width: u32, out: &mut StripPacking) -> Time {
    let mut items: Vec<Rect> = rects.to_vec();
    items.sort_by(|a, b| b.width.cmp(&a.width).then(b.height.cmp(&a.height)));
    // Skyline: per processor column, the current top.
    let mut sky: Vec<Time> = vec![Time::ZERO; strip_width as usize];
    for r in items {
        assert!(r.width <= strip_width);
        // Find the x minimizing (support height, x): the support of window
        // [x, x+w) is the max skyline inside it.
        let w = r.width as usize;
        let mut best_x = 0usize;
        let mut best_y = None::<Time>;
        for x in 0..=(strip_width as usize - w) {
            let support = sky[x..x + w].iter().copied().max().expect("w >= 1");
            if best_y.map(|b| support < b).unwrap_or(true) {
                best_y = Some(support);
                best_x = x;
            }
        }
        let y = best_y.expect("at least one window");
        out.place(PlacedRect {
            id: r.id,
            x: best_x as u32,
            width: r.width,
            y,
            height: r.height,
        });
        let new_top = y + r.height;
        for col in &mut sky[best_x..best_x + w] {
            *col = new_top;
        }
    }
    out.height()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u32, w: u32, h: i64) -> Rect {
        Rect {
            id: TaskId(id),
            width: w,
            height: Time::from_int(h),
        }
    }

    #[test]
    fn nfdh_identical_rectangles() {
        let rects: Vec<Rect> = (0..8).map(|i| r(i, 2, 1)).collect();
        let mut p = StripPacking::new(8);
        let h = nfdh(&rects, 8, Time::ZERO, &mut p);
        p.assert_valid();
        assert_eq!(h, Time::from_int(2));
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn nfdh_classic_bound() {
        // NFDH height ≤ 2·area/W + h_max on assorted rectangles.
        let rects = vec![
            r(0, 3, 5),
            r(1, 2, 4),
            r(2, 4, 3),
            r(3, 1, 3),
            r(4, 2, 2),
            r(5, 3, 1),
            r(6, 1, 1),
        ];
        let mut p = StripPacking::new(4);
        let h = nfdh(&rects, 4, Time::ZERO, &mut p);
        p.assert_valid();
        let area: Time = rects.iter().map(|x| x.height.mul_int(x.width as i64)).sum();
        let bound = area.mul_int(2).div_int(4) + Time::from_int(5);
        assert!(h <= bound, "NFDH {h} > bound {bound}");
    }

    #[test]
    fn ffdh_at_most_nfdh() {
        let rects = vec![
            r(0, 3, 5),
            r(1, 2, 4),
            r(2, 4, 3),
            r(3, 1, 3),
            r(4, 2, 2),
            r(5, 3, 1),
        ];
        let mut pn = StripPacking::new(4);
        let hn = nfdh(&rects, 4, Time::ZERO, &mut pn);
        let mut pf = StripPacking::new(4);
        let hf = ffdh(&rects, 4, Time::ZERO, &mut pf);
        pf.assert_valid();
        assert!(hf <= hn);
    }

    #[test]
    fn y_offset_respected() {
        let rects = vec![r(0, 2, 3)];
        let mut p = StripPacking::new(4);
        let h = nfdh(&rects, 4, Time::from_int(10), &mut p);
        assert_eq!(h, Time::from_int(3));
        assert_eq!(p.rects()[0].y, Time::from_int(10));
    }

    #[test]
    fn bottom_left_valid_and_reasonable() {
        let rects = vec![
            r(0, 3, 2),
            r(1, 1, 4),
            r(2, 2, 2),
            r(3, 2, 1),
            r(4, 4, 1),
            r(5, 1, 1),
        ];
        let mut p = StripPacking::new(4);
        let h = bottom_left(&rects, 4, &mut p);
        p.assert_valid();
        let area: Time = rects.iter().map(|x| x.height.mul_int(x.width as i64)).sum();
        // BL is a 3-approximation of the area/width bound here.
        assert!(h <= area.div_int(4).mul_int(3) + Time::from_int(4));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn bottom_left_fills_holes() {
        // A wide base with a notch the BL rule should fill.
        let rects = vec![r(0, 3, 2), r(1, 1, 2), r(2, 1, 1)];
        let mut p = StripPacking::new(4);
        let h = bottom_left(&rects, 4, &mut p);
        p.assert_valid();
        // Widths 3,1,1: base row holds 3+1; the last 1×1 sits on top —
        // but there is a 1-wide column at height 2... all fit in height 3.
        assert!(h <= Time::from_int(3));
    }
}
