//! SVG rendering of strip packings — the true geometry (x = processors,
//! y = time flowing upward), matching how strip-packing papers draw
//! their figures.

use crate::packing::StripPacking;
use rigid_dag::TaskGraph;
use std::fmt::Write as _;

/// Options for [`render_packing_svg`].
#[derive(Clone, Debug)]
pub struct StripSvgOptions {
    /// Pixels per processor column.
    pub col_width: u32,
    /// Total drawing height in pixels (time axis).
    pub height: u32,
    /// Draw task labels where they fit.
    pub labels: bool,
}

impl Default for StripSvgOptions {
    fn default() -> Self {
        StripSvgOptions {
            col_width: 60,
            height: 640,
            labels: true,
        }
    }
}

const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

/// Renders a strip packing as an SVG document. `graph` supplies labels
/// (pass an empty graph for anonymous rectangles).
pub fn render_packing_svg(
    packing: &StripPacking,
    graph: &TaskGraph,
    opts: &StripSvgOptions,
) -> String {
    let strip_w = packing.strip_width();
    let margin = 34u32;
    let draw_w = opts.col_width * strip_w;
    let draw_h = opts.height.max(80);
    let total_w = draw_w + margin + 12;
    let total_h = draw_h + margin + 12;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" height="{total_h}" viewBox="0 0 {total_w} {total_h}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<rect x="0" y="0" width="{total_w}" height="{total_h}" fill="white"/>"#
    );
    if packing.is_empty() {
        let _ = writeln!(out, r#"<text x="10" y="20">(empty packing)</text>"#);
        out.push_str("</svg>\n");
        return out;
    }
    let height_t = packing.height();
    // y grows upward: time 0 at the bottom of the drawing.
    let y_of = |t: rigid_time::Time| -> f64 {
        12.0 + draw_h as f64 * (1.0 - t.ratio(height_t).to_f64())
    };
    let x_of = |col: u32| -> f64 { margin as f64 + col as f64 * opts.col_width as f64 };

    // Strip border.
    let _ = writeln!(
        out,
        r##"<rect x="{:.1}" y="12" width="{draw_w}" height="{draw_h}" fill="none" stroke="#999"/>"##,
        x_of(0)
    );

    for r in packing.rects() {
        let x = x_of(r.x);
        let w = (r.width * opts.col_width) as f64;
        let y_top = y_of(r.y_end());
        let h = y_of(r.y) - y_top;
        let color = PALETTE[r.id.0 as usize % PALETTE.len()];
        let _ = writeln!(
            out,
            r##"<rect x="{x:.1}" y="{y_top:.1}" width="{w:.1}" height="{:.1}" fill="{color}" stroke="#333" stroke-width="0.5" opacity="0.9"/>"##,
            h.max(1.0)
        );
        if opts.labels && h > 12.0 {
            let label = if r.id.index() < graph.len() {
                graph.spec(r.id).label_str().to_string()
            } else {
                String::new()
            };
            let name = if label.is_empty() {
                format!("{}", r.id)
            } else {
                label
            };
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" fill="white">{}</text>"#,
                x + 3.0,
                y_top + 12.0,
                name.replace('&', "&amp;").replace('<', "&lt;")
            );
        }
    }
    // Axis labels: strip height and width.
    let _ = writeln!(
        out,
        r##"<text x="4" y="20" fill="#333">{}</text>"##,
        packing.height()
    );
    let _ = writeln!(
        out,
        r##"<text x="4" y="{}" fill="#333">0</text>"##,
        12 + draw_h
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::PlacedRect;
    use rigid_dag::{TaskGraph, TaskId};
    use rigid_time::Time;

    #[test]
    fn packing_svg_well_formed() {
        let mut p = StripPacking::new(4);
        p.place(PlacedRect {
            id: TaskId(0),
            x: 0,
            width: 2,
            y: Time::ZERO,
            height: Time::from_int(3),
        });
        p.place(PlacedRect {
            id: TaskId(1),
            x: 2,
            width: 2,
            y: Time::ZERO,
            height: Time::from_int(2),
        });
        let svg = render_packing_svg(&p, &TaskGraph::new(), &StripSvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 2 + 2); // bg + border + 2 rects
    }

    #[test]
    fn empty_packing_svg() {
        let svg = render_packing_svg(
            &StripPacking::new(3),
            &TaskGraph::new(),
            &StripSvgOptions::default(),
        );
        assert!(svg.contains("empty packing"));
    }

    #[test]
    fn end_to_end_strip_svg() {
        use rigid_dag::{paper, StaticSource};
        let inst = paper::figure3();
        let mut cbs = crate::CatBatchStrip::new(inst.procs());
        let _ = rigid_sim::engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
        let svg = render_packing_svg(
            cbs.packing(),
            inst.graph(),
            &StripSvgOptions::default(),
        );
        // 11 task rects + background + border.
        assert_eq!(svg.matches("<rect").count(), 13);
        assert!(svg.contains(">A<") || svg.contains(">B<"));
    }
}
