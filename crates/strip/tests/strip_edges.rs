//! Strip-packing edge cases.

use rigid_dag::{DagBuilder, StaticSource, TaskId};
use rigid_sim::engine;
use rigid_strip::shelf_pack::{bottom_left, ffdh, nfdh};
use rigid_strip::{CatBatchStrip, PlacedRect, Rect, StripPacking};
use rigid_time::Time;

fn r(id: u32, w: u32, h: i64) -> Rect {
    Rect {
        id: TaskId(id),
        width: w,
        height: Time::from_int(h),
    }
}

#[test]
fn empty_input_empty_packing() {
    let mut p = StripPacking::new(4);
    assert_eq!(nfdh(&[], 4, Time::ZERO, &mut p), Time::ZERO);
    assert!(p.is_empty());
    assert_eq!(p.height(), Time::ZERO);
    assert_eq!(p.area(), Time::ZERO);
    let mut p2 = StripPacking::new(4);
    assert_eq!(bottom_left(&[], 4, &mut p2), Time::ZERO);
}

#[test]
fn full_width_rectangles_stack() {
    let rects = vec![r(0, 4, 2), r(1, 4, 1), r(2, 4, 3)];
    let mut p = StripPacking::new(4);
    let h = ffdh(&rects, 4, Time::ZERO, &mut p);
    p.assert_valid();
    assert_eq!(h, Time::from_int(6));
}

#[test]
fn unit_width_rectangles_fill_rows() {
    let rects: Vec<Rect> = (0..8).map(|i| r(i, 1, 2)).collect();
    let mut p = StripPacking::new(4);
    let h = nfdh(&rects, 4, Time::ZERO, &mut p);
    p.assert_valid();
    assert_eq!(h, Time::from_int(4)); // two shelves of four
}

#[test]
#[should_panic(expected = "wider than the strip")]
fn oversized_rectangle_rejected() {
    let mut p = StripPacking::new(4);
    let _ = nfdh(&[r(0, 5, 1)], 4, Time::ZERO, &mut p);
}

#[test]
fn bl_fills_holes_nfdh_cannot() {
    // A wide low base, a tall thin tower, and a medium block: shelves
    // waste the space above the base (NFDH height 5), while bottom-left
    // stacks the block on the base next to the tower (height 4).
    let rects = vec![r(0, 3, 2), r(1, 1, 4), r(2, 2, 1)];
    let mut ps = StripPacking::new(4);
    let hs = nfdh(&rects, 4, Time::ZERO, &mut ps);
    ps.assert_valid();
    assert_eq!(hs, Time::from_int(5));
    let mut pb = StripPacking::new(4);
    let hb = bottom_left(&rects, 4, &mut pb);
    pb.assert_valid();
    assert_eq!(hb, Time::from_int(4));
}

#[test]
fn placed_rect_geometry() {
    let a = PlacedRect {
        id: TaskId(0),
        x: 1,
        width: 2,
        y: Time::ZERO,
        height: Time::from_int(2),
    };
    assert_eq!(a.x_end(), 3);
    assert_eq!(a.y_end(), Time::from_int(2));
    let b = PlacedRect {
        id: TaskId(1),
        x: 3,
        width: 1,
        y: Time::ONE,
        height: Time::ONE,
    };
    assert!(!a.overlaps(&b)); // share the x = 3 edge only
}

#[test]
fn strip_scheduler_deep_chain() {
    // A pure chain: every batch is a single task; the strip run equals
    // the chain length.
    let inst = DagBuilder::new()
        .task("a", Time::from_int(1), 2)
        .task("b", Time::from_int(2), 3)
        .task("c", Time::from_int(1), 4)
        .edge("a", "b")
        .edge("b", "c")
        .build(4);
    let mut cbs = CatBatchStrip::new(4);
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
    result.schedule.assert_valid(&inst);
    cbs.packing().assert_valid();
    assert_eq!(result.makespan(), Time::from_int(4));
    // All rectangles start at x = 0 (each is alone in its shelf).
    for rect in cbs.packing().rects() {
        assert_eq!(rect.x, 0);
    }
}

#[test]
fn multi_shelf_batch_serializes_shelves() {
    // One batch with tasks too wide to share a shelf: NFDH stacks them,
    // and the schedule serializes the shelves in time.
    let inst = DagBuilder::new()
        .task("w1", Time::from_int(2), 3)
        .task("w2", Time::from_int(2), 3)
        .task("w3", Time::from_int(2), 3)
        .build(4);
    let mut cbs = CatBatchStrip::new(4);
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
    result.schedule.assert_valid(&inst);
    assert_eq!(result.makespan(), Time::from_int(6));
}
