//! The resumable campaign loop: supervised trials + journaled
//! checkpoints + graceful interrupt points.

use crate::journal::{
    read_journal, JournalError, JournalHeader, JournalWriter, ShardInfo, JOURNAL_SCHEMA,
};
use crate::shard::ShardSpec;
use crate::supervisor::{run_supervised, SharedQuarantine, Supervisor, SupervisorPolicy};
use rigid_dag::{instance_fingerprint, Instance, StableHasher, StaticSource};
use rigid_exec::{ReorderBuffer, ReorderWait, ScratchPool};
use rigid_faults::{run_trial, run_trial_reusing, CampaignStats, FaultConfig, TrialError, TrialStats};
use rigid_sim::{EngineConfig, EngineScratch, OnlineScheduler, RunBudget, RunError};
use rigid_time::Time;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How a campaign should be supervised, journaled, and budgeted.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Watchdog / retry / quarantine policy for each trial.
    pub policy: SupervisorPolicy,
    /// Hard per-trial engine budget (events, wall clock).
    pub budget: RunBudget,
    /// Journal path. `None` runs without checkpoints.
    pub journal: Option<PathBuf>,
    /// With a journal: replay existing records instead of truncating.
    /// A missing journal file resumes into a fresh one.
    pub resume: bool,
    /// Worker threads for trial execution. `0` and `1` both run the
    /// serial in-line loop (with its per-trial fsync durability); `>= 2`
    /// fans trials out over a work-stealing pool whose results are
    /// reordered into canonical seed order and journaled with group
    /// commit — journals and aggregates stay **byte-identical** to
    /// serial execution for any value.
    pub jobs: usize,
    /// Run only shard `i/N` of the deduplicated seed space (see
    /// [`ShardSpec::plan`]). The journal (required for sharding to be
    /// useful, though not enforced here) gets a
    /// [`SHARD_SCHEMA`](crate::journal::SHARD_SCHEMA) header pinning the
    /// shard coordinates; `merge` later reconstitutes the single-process
    /// journal byte-for-byte from a full set of shard files.
    pub shard: Option<ShardSpec>,
}

/// What a campaign invocation did, beyond the aggregate stats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// The aggregate stats — byte-identical between an uninterrupted
    /// run and any interrupted-then-resumed sequence over the same
    /// seeds.
    pub stats: CampaignStats,
    /// Trials actually executed by this invocation.
    pub executed: usize,
    /// Trials replayed from the journal without re-execution.
    pub replayed: usize,
    /// Whether the stop condition (e.g. SIGINT) ended the run early;
    /// `stats` then covers only the seeds processed so far.
    pub interrupted: bool,
    /// Whether the journal had a torn trailing line (crash artifact,
    /// discarded; that trial re-executes).
    pub torn_tail: bool,
}

/// Why a campaign could not run at all (per-trial failures never land
/// here — they are recorded in the trial stats).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// The journal could not be written, read, or matched.
    Journal(JournalError),
    /// The fault-free baseline run failed — the scheduler cannot even
    /// schedule the unperturbed instance.
    Baseline(RunError),
    /// The fault-free baseline run panicked.
    BaselinePanicked {
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => e.fmt(f),
            CampaignError::Baseline(e) => write!(f, "fault-free baseline failed: {e}"),
            CampaignError::BaselinePanicked { message } => {
                write!(f, "fault-free baseline panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// The stable scenario fingerprint a journal is keyed on: instance,
/// fault config, scheduler name, and the deterministic part of the
/// budget (`max_events`). The wall-clock deadline is deliberately
/// excluded — it cannot be reproduced anyway.
pub fn campaign_fingerprint(
    instance: &Instance,
    config: &FaultConfig,
    scheduler: &str,
    budget: RunBudget,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(instance_fingerprint(instance));
    h.write_u32(config.fail_permille);
    h.write_u32(config.max_failures_per_task);
    h.write_u32(config.straggle_permille);
    h.write_u32(config.straggle_factor_permille.0);
    h.write_u32(config.straggle_factor_permille.1);
    h.write_u64(config.dips.len() as u64);
    for dip in &config.dips {
        h.write_str(&dip.from.to_string());
        h.write_str(&dip.until.to_string());
        h.write_u32(dip.capacity);
    }
    h.write_str(scheduler);
    h.write_u64(budget.max_events.map_or(u64::MAX, |e| e));
    h.finish()
}

/// Group commit: fsync the journal after this many buffered records…
const GROUP_COMMIT_BATCH: usize = 64;
/// …or once the oldest unsynced record is this stale, whichever first.
const GROUP_COMMIT_DEADLINE: Duration = Duration::from_millis(25);
/// How often the parallel coordinator wakes while waiting for an
/// out-of-order result, to honor the flush deadline.
const COORDINATOR_POLL: Duration = Duration::from_millis(5);

/// Batches journal appends into group commits: records are written (one
/// `write` each, surviving a process kill) but fsynced only per batch or
/// per deadline — one disk stall per [`GROUP_COMMIT_BATCH`] trials
/// instead of one per trial. [`flush`](GroupCommit::flush) runs on
/// interrupt and at campaign end, so a graceful stop loses nothing; an
/// outright power loss costs at most the unsynced suffix, which resume
/// re-executes.
struct GroupCommit<'a> {
    writer: Option<&'a mut JournalWriter>,
    pending: usize,
    dirty_since: Option<Instant>,
}

impl<'a> GroupCommit<'a> {
    fn new(writer: Option<&'a mut JournalWriter>) -> Self {
        GroupCommit { writer, pending: 0, dirty_since: None }
    }

    fn record(&mut self, trial: &TrialStats) -> Result<(), JournalError> {
        let Some(w) = self.writer.as_deref_mut() else { return Ok(()) };
        w.record_buffered(trial)?;
        self.pending += 1;
        self.dirty_since.get_or_insert_with(Instant::now);
        if self.pending >= GROUP_COMMIT_BATCH {
            self.flush()?;
        }
        Ok(())
    }

    fn flush_if_due(&mut self) -> Result<(), JournalError> {
        if self.dirty_since.is_some_and(|t| t.elapsed() >= GROUP_COMMIT_DEADLINE) {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), JournalError> {
        if self.pending > 0 {
            if let Some(w) = self.writer.as_deref_mut() {
                w.sync()?;
            }
        }
        self.pending = 0;
        self.dirty_since = None;
        Ok(())
    }
}

/// The `TrialStats` recorded when the supervision envelope — not the
/// engine — rejected the trial (panicked, timed out, quarantined).
fn enveloped_failure(instance: &Instance, seed: u64, err: TrialError) -> TrialStats {
    TrialStats {
        seed,
        outcome: Err(err),
        failures: 0,
        wasted_area: Time::ZERO,
        inflated_area: Time::ZERO,
        min_capacity: instance.procs(),
    }
}

/// Runs a supervised, journaled, resumable fault campaign.
///
/// Per seed, in order: if `stop()` returns true the campaign winds down
/// (journal flushed — every recorded trial is fsynced); if the
/// journal holds the seed's record it is replayed **byte-for-byte**;
/// otherwise the trial runs under the supervision envelope (panic
/// capture, watchdog, retries, quarantine) and its record is appended
/// in canonical seed order.
///
/// With `options.jobs >= 2`, trials fan out over a work-stealing worker
/// pool; a single coordinator reorders results into seed order before
/// journaling, batching appends with group commit. Journals, aggregates,
/// and `TrialStats` are byte-identical to serial execution for any
/// thread count, and kill-and-resume replays exactly the same records.
///
/// Resuming a journal written for a different scenario (instance,
/// config, scheduler, or event budget) fails with
/// [`JournalError::FingerprintMismatch`]; resuming a *complete* journal
/// executes zero trials and reproduces the aggregates exactly.
pub fn run_campaign<S, F>(
    instance: &Instance,
    config: &FaultConfig,
    seeds: &[u64],
    options: &CampaignOptions,
    stop: impl Fn() -> bool + Sync,
    make_scheduler: F,
) -> Result<CampaignOutcome, CampaignError>
where
    S: OnlineScheduler + 'static,
    F: Fn() -> S + Clone + Send + Sync + 'static,
{
    let scheduler_name = make_scheduler().name().to_string();
    let fingerprint = campaign_fingerprint(instance, config, &scheduler_name, options.budget);
    let fingerprint_hex = format!("{fingerprint:016x}");

    // Sharding: restrict the run to this process's slice of the
    // deduplicated seed space. The plan is a pure function of the full
    // seed list, so every `--shard i/N` process computes the same
    // partition independently.
    let assigned: Vec<u64>;
    let seeds: &[u64] = match &options.shard {
        Some(spec) => {
            assigned = spec.plan(seeds);
            &assigned
        }
        None => seeds,
    };
    let shard_info: Option<ShardInfo> = options.shard.map(|spec| spec.info(seeds));

    // Resume: load the journal and index its records by seed.
    let mut replay: BTreeMap<u64, TrialStats> = BTreeMap::new();
    let mut torn_tail = false;
    let mut writer: Option<JournalWriter> = None;
    let mut baseline: Option<Time> = None;
    if let Some(path) = &options.journal {
        if options.resume && path.exists() {
            let contents = read_journal(path)?;
            if contents.header.fingerprint != fingerprint_hex {
                return Err(JournalError::FingerprintMismatch {
                    journal: contents.header.fingerprint,
                    campaign: fingerprint_hex,
                }
                .into());
            }
            if contents.shard != shard_info {
                let describe = |s: &Option<ShardInfo>| match s {
                    Some(info) => info.to_string(),
                    None => "unsharded".to_string(),
                };
                return Err(JournalError::ShardMismatch {
                    journal: describe(&contents.shard),
                    campaign: describe(&shard_info),
                }
                .into());
            }
            baseline = Some(contents.header.fault_free_makespan);
            torn_tail = contents.torn_tail;
            writer = Some(JournalWriter::append_validated(path, &contents)?);
            for t in contents.trials {
                replay.entry(t.seed).or_insert(t);
            }
        }
    }

    // The baseline: reused from the journal header on resume, computed
    // (with panic capture — nothing may kill the campaign) otherwise.
    let fault_free_makespan = match baseline {
        Some(m) => m,
        None => {
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut sched = make_scheduler();
                EngineConfig::new().try_run(&mut StaticSource::new(instance.clone()), &mut sched)
            }))
            .map_err(|p| CampaignError::BaselinePanicked {
                message: rigid_faults::panic_message(p),
            })?;
            run.map_err(CampaignError::Baseline)?.makespan()
        }
    };

    if writer.is_none() {
        if let Some(path) = &options.journal {
            let header = JournalHeader {
                schema: JOURNAL_SCHEMA.to_string(),
                fingerprint: fingerprint_hex,
                scheduler: scheduler_name,
                fault_free_makespan,
            };
            writer = Some(match &shard_info {
                Some(info) => JournalWriter::create_shard(path, &header, info)?,
                None => JournalWriter::create(path, &header)?,
            });
        }
    }

    let mut trials = Vec::with_capacity(seeds.len());
    let mut executed = 0;
    let mut replayed = 0;
    let mut interrupted = false;
    let jobs = options.jobs.max(1);

    if jobs <= 1 {
        let mut supervisor = Supervisor::new(options.policy);
        for &seed in seeds {
            if stop() {
                interrupted = true;
                break;
            }
            if let Some(t) = replay.get(&seed) {
                trials.push(t.clone());
                replayed += 1;
                continue;
            }
            let budget = options.budget;
            let inst = instance.clone();
            let cfg = config.clone();
            let mk = make_scheduler.clone();
            let trial = supervisor
                .run_trial(seed, fingerprint, move || {
                    let inst = inst.clone();
                    let cfg = cfg.clone();
                    let mk = mk.clone();
                    move || {
                        let mut sched = mk();
                        run_trial(&inst, &cfg, seed, budget, &mut sched)
                    }
                })
                .unwrap_or_else(|err| enveloped_failure(instance, seed, err));
            if let Some(w) = writer.as_mut() {
                w.record(&trial)?;
            }
            executed += 1;
            // Duplicate seeds later in the list replay this result
            // instead of re-running.
            replay.insert(seed, trial.clone());
            trials.push(trial);
        }
    } else {
        // Work list: the first occurrence of each seed that is not
        // already in the journal. Duplicates and replayed seeds are
        // resolved by the coordinator from `replay`, exactly like the
        // serial loop.
        let mut desc_index: BTreeMap<u64, usize> = BTreeMap::new();
        let mut descs: Vec<u64> = Vec::new();
        for &seed in seeds {
            if !replay.contains_key(&seed) && !desc_index.contains_key(&seed) {
                desc_index.insert(seed, descs.len());
                descs.push(seed);
            }
        }
        let total = descs.len();
        let quarantine = SharedQuarantine::new();
        let scratch: Arc<ScratchPool<EngineScratch>> = Arc::new(ScratchPool::new());
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, TrialStats)>();
        let mut gc = GroupCommit::new(writer.as_mut());
        let mut journal_error: Option<JournalError> = None;
        let policy = options.policy;
        let budget = options.budget;
        let descs = &descs;
        let quarantine = &quarantine;
        let cursor = &cursor;
        let stop = &stop;
        thread::scope(|scope| {
            for _ in 0..jobs.min(total) {
                let tx = tx.clone();
                let scratch = Arc::clone(&scratch);
                let mk = make_scheduler.clone();
                scope.spawn(move || loop {
                    if stop() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let seed = descs[i];
                    let trial = run_supervised(&policy, quarantine, seed, fingerprint, || {
                        let inst = instance.clone();
                        let cfg = config.clone();
                        let mk = mk.clone();
                        let scratch = Arc::clone(&scratch);
                        move || {
                            scratch.with(EngineScratch::new, |s| {
                                let mut sched = mk();
                                run_trial_reusing(&inst, &cfg, seed, budget, &mut sched, s)
                            })
                        }
                    })
                    .unwrap_or_else(|err| enveloped_failure(instance, seed, err));
                    if tx.send((i, trial)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Owned by the scope body: dropping it on an early break
            // closes the result channel, so workers notice on their next
            // send and stop claiming descriptors.
            let mut reorder = ReorderBuffer::new(rx);

            // Coordinator: walk the seed list in canonical order,
            // journaling each result as soon as its turn comes up. The
            // descriptor indices are assigned in first-occurrence order,
            // so the requests below are monotonic and the reorder buffer
            // holds at most what the workers have run ahead by.
            'seeds: for &seed in seeds {
                if stop() {
                    interrupted = true;
                    break 'seeds;
                }
                if let Some(t) = replay.get(&seed) {
                    trials.push(t.clone());
                    replayed += 1;
                    continue;
                }
                let idx = desc_index[&seed];
                let trial = loop {
                    match reorder.recv_index(idx, COORDINATOR_POLL) {
                        Ok(t) => break t,
                        Err(ReorderWait::Tick) => {
                            if let Err(e) = gc.flush_if_due() {
                                journal_error = Some(e);
                                break 'seeds;
                            }
                        }
                        Err(ReorderWait::Disconnected) => {
                            // Every worker exited without producing this
                            // result: the stop condition interrupted the
                            // fan-out. In-flight results past this point
                            // are discarded so the journal stays a
                            // contiguous, in-order prefix.
                            interrupted = true;
                            break 'seeds;
                        }
                    }
                };
                if let Err(e) = gc.record(&trial) {
                    journal_error = Some(e);
                    break 'seeds;
                }
                executed += 1;
                replay.insert(seed, trial.clone());
                trials.push(trial);
            }
        });
        // Flush on interrupt and at completion alike: every journaled
        // record is durable before the campaign returns.
        let flushed = gc.flush();
        if let Some(e) = journal_error {
            return Err(e.into());
        }
        flushed?;
    }

    Ok(CampaignOutcome {
        stats: CampaignStats { fault_free_makespan, trials },
        executed,
        replayed,
        interrupted,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_scenarios() {
        let inst = rigid_dag::paper::figure3();
        let cfg = FaultConfig::fail_stop(300, 2);
        let base = campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::UNLIMITED);
        assert_eq!(
            base,
            campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::UNLIMITED),
            "fingerprint must be stable"
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &FaultConfig::fail_stop(301, 2), "catbatch", RunBudget::UNLIMITED)
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &cfg, "list", RunBudget::UNLIMITED)
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::max_events(10_000))
        );
        let other = rigid_dag::paper::intro_example(8, rigid_time::Time::from_ratio(1, 100));
        assert_ne!(base, campaign_fingerprint(&other, &cfg, "catbatch", RunBudget::UNLIMITED));
    }
}
