//! The resumable campaign loop: supervised trials + journaled
//! checkpoints + graceful interrupt points.

use crate::journal::{read_journal, JournalError, JournalHeader, JournalWriter, JOURNAL_SCHEMA};
use crate::supervisor::{Supervisor, SupervisorPolicy};
use rigid_dag::{instance_fingerprint, Instance, StableHasher, StaticSource};
use rigid_faults::{run_trial, CampaignStats, FaultConfig, TrialStats};
use rigid_sim::{try_run, OnlineScheduler, RunBudget, RunError};
use rigid_time::Time;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// How a campaign should be supervised, journaled, and budgeted.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Watchdog / retry / quarantine policy for each trial.
    pub policy: SupervisorPolicy,
    /// Hard per-trial engine budget (events, wall clock).
    pub budget: RunBudget,
    /// Journal path. `None` runs without checkpoints.
    pub journal: Option<PathBuf>,
    /// With a journal: replay existing records instead of truncating.
    /// A missing journal file resumes into a fresh one.
    pub resume: bool,
}

/// What a campaign invocation did, beyond the aggregate stats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// The aggregate stats — byte-identical between an uninterrupted
    /// run and any interrupted-then-resumed sequence over the same
    /// seeds.
    pub stats: CampaignStats,
    /// Trials actually executed by this invocation.
    pub executed: usize,
    /// Trials replayed from the journal without re-execution.
    pub replayed: usize,
    /// Whether the stop condition (e.g. SIGINT) ended the run early;
    /// `stats` then covers only the seeds processed so far.
    pub interrupted: bool,
    /// Whether the journal had a torn trailing line (crash artifact,
    /// discarded; that trial re-executes).
    pub torn_tail: bool,
}

/// Why a campaign could not run at all (per-trial failures never land
/// here — they are recorded in the trial stats).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// The journal could not be written, read, or matched.
    Journal(JournalError),
    /// The fault-free baseline run failed — the scheduler cannot even
    /// schedule the unperturbed instance.
    Baseline(RunError),
    /// The fault-free baseline run panicked.
    BaselinePanicked {
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => e.fmt(f),
            CampaignError::Baseline(e) => write!(f, "fault-free baseline failed: {e}"),
            CampaignError::BaselinePanicked { message } => {
                write!(f, "fault-free baseline panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// The stable scenario fingerprint a journal is keyed on: instance,
/// fault config, scheduler name, and the deterministic part of the
/// budget (`max_events`). The wall-clock deadline is deliberately
/// excluded — it cannot be reproduced anyway.
pub fn campaign_fingerprint(
    instance: &Instance,
    config: &FaultConfig,
    scheduler: &str,
    budget: RunBudget,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(instance_fingerprint(instance));
    h.write_u32(config.fail_permille);
    h.write_u32(config.max_failures_per_task);
    h.write_u32(config.straggle_permille);
    h.write_u32(config.straggle_factor_permille.0);
    h.write_u32(config.straggle_factor_permille.1);
    h.write_u64(config.dips.len() as u64);
    for dip in &config.dips {
        h.write_str(&dip.from.to_string());
        h.write_str(&dip.until.to_string());
        h.write_u32(dip.capacity);
    }
    h.write_str(scheduler);
    h.write_u64(budget.max_events.map_or(u64::MAX, |e| e));
    h.finish()
}

/// Runs a supervised, journaled, resumable fault campaign.
///
/// Per seed, in order: if `stop()` returns true the campaign winds down
/// (journal already flushed — every finished trial is fsynced); if the
/// journal holds the seed's record it is replayed **byte-for-byte**;
/// otherwise the trial runs under the supervisor (panic capture,
/// watchdog, retries, quarantine) and its record is appended and
/// fsynced before the next seed starts.
///
/// Resuming a journal written for a different scenario (instance,
/// config, scheduler, or event budget) fails with
/// [`JournalError::FingerprintMismatch`]; resuming a *complete* journal
/// executes zero trials and reproduces the aggregates exactly.
pub fn run_campaign<S, F>(
    instance: &Instance,
    config: &FaultConfig,
    seeds: &[u64],
    options: &CampaignOptions,
    stop: impl Fn() -> bool,
    make_scheduler: F,
) -> Result<CampaignOutcome, CampaignError>
where
    S: OnlineScheduler + 'static,
    F: Fn() -> S + Clone + Send + Sync + 'static,
{
    let scheduler_name = make_scheduler().name().to_string();
    let fingerprint = campaign_fingerprint(instance, config, &scheduler_name, options.budget);
    let fingerprint_hex = format!("{fingerprint:016x}");

    // Resume: load the journal and index its records by seed.
    let mut replay: BTreeMap<u64, TrialStats> = BTreeMap::new();
    let mut torn_tail = false;
    let mut writer: Option<JournalWriter> = None;
    let mut baseline: Option<Time> = None;
    if let Some(path) = &options.journal {
        if options.resume && path.exists() {
            let contents = read_journal(path)?;
            if contents.header.fingerprint != fingerprint_hex {
                return Err(JournalError::FingerprintMismatch {
                    journal: contents.header.fingerprint,
                    campaign: fingerprint_hex,
                }
                .into());
            }
            baseline = Some(contents.header.fault_free_makespan);
            torn_tail = contents.torn_tail;
            for t in contents.trials {
                replay.entry(t.seed).or_insert(t);
            }
            writer = Some(JournalWriter::append(path)?);
        }
    }

    // The baseline: reused from the journal header on resume, computed
    // (with panic capture — nothing may kill the campaign) otherwise.
    let fault_free_makespan = match baseline {
        Some(m) => m,
        None => {
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut sched = make_scheduler();
                try_run(&mut StaticSource::new(instance.clone()), &mut sched)
            }))
            .map_err(|p| CampaignError::BaselinePanicked {
                message: rigid_faults::panic_message(p),
            })?;
            run.map_err(CampaignError::Baseline)?.makespan()
        }
    };

    if writer.is_none() {
        if let Some(path) = &options.journal {
            let header = JournalHeader {
                schema: JOURNAL_SCHEMA.to_string(),
                fingerprint: fingerprint_hex,
                scheduler: scheduler_name,
                fault_free_makespan,
            };
            writer = Some(JournalWriter::create(path, &header)?);
        }
    }

    let mut supervisor = Supervisor::new(options.policy);
    let mut trials = Vec::with_capacity(seeds.len());
    let mut executed = 0;
    let mut replayed = 0;
    let mut interrupted = false;

    for &seed in seeds {
        if stop() {
            interrupted = true;
            break;
        }
        if let Some(t) = replay.get(&seed) {
            trials.push(t.clone());
            replayed += 1;
            continue;
        }
        let budget = options.budget;
        let inst = instance.clone();
        let cfg = config.clone();
        let mk = make_scheduler.clone();
        let trial = supervisor
            .run_trial(seed, fingerprint, move || {
                let inst = inst.clone();
                let cfg = cfg.clone();
                let mk = mk.clone();
                move || {
                    let mut sched = mk();
                    run_trial(&inst, &cfg, seed, budget, &mut sched)
                }
            })
            .unwrap_or_else(|err| TrialStats {
                seed,
                outcome: Err(err),
                failures: 0,
                wasted_area: Time::ZERO,
                inflated_area: Time::ZERO,
                min_capacity: instance.procs(),
            });
        if let Some(w) = writer.as_mut() {
            w.record(&trial)?;
        }
        executed += 1;
        // Duplicate seeds later in the list replay this result instead
        // of re-running.
        replay.insert(seed, trial.clone());
        trials.push(trial);
    }

    Ok(CampaignOutcome {
        stats: CampaignStats { fault_free_makespan, trials },
        executed,
        replayed,
        interrupted,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_scenarios() {
        let inst = rigid_dag::paper::figure3();
        let cfg = FaultConfig::fail_stop(300, 2);
        let base = campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::UNLIMITED);
        assert_eq!(
            base,
            campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::UNLIMITED),
            "fingerprint must be stable"
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &FaultConfig::fail_stop(301, 2), "catbatch", RunBudget::UNLIMITED)
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &cfg, "list", RunBudget::UNLIMITED)
        );
        assert_ne!(
            base,
            campaign_fingerprint(&inst, &cfg, "catbatch", RunBudget::max_events(10_000))
        );
        let other = rigid_dag::paper::intro_example(8, rigid_time::Time::from_ratio(1, 100));
        assert_ne!(base, campaign_fingerprint(&other, &cfg, "catbatch", RunBudget::UNLIMITED));
    }
}
