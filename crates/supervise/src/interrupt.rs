//! Graceful SIGINT/SIGTERM handling.
//!
//! [`install`] registers a minimal, async-signal-safe handler that only
//! bumps a process-global epoch counter; campaign loops capture an
//! [`InterruptToken`] when they start and poll [`InterruptToken::interrupted`]
//! between trials, winding down cleanly — the journal is already
//! fsynced per record, so `^C` costs nothing that was finished.
//!
//! The epoch design matters in long-lived processes (the `catbatch
//! serve` daemon, test binaries running many campaigns): a single
//! process-global boolean, once set, would poison every *subsequent*
//! campaign in the same process. With epochs, a signal only interrupts
//! work whose token predates it; work started afterwards observes a
//! fresh epoch and runs normally. The legacy free functions
//! ([`interrupted`], [`reset`]) remain as thin wrappers over one
//! process-global token for existing single-campaign callers.
//!
//! The registration itself is the single unsafe corner of this
//! workspace: a direct declaration of POSIX `signal(2)` (no external
//! crates are available offline). It is confined to this module behind
//! the crate-level `#![deny(unsafe_code)]`; everything observable from
//! outside is safe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Bumped once per delivered SIGINT/SIGTERM. Never decremented.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Baseline for the legacy [`interrupted`]/[`reset`] wrappers: signals
/// at or below this epoch count as "handled".
static BASELINE: AtomicU64 = AtomicU64::new(0);
static INSTALL: Once = Once::new();

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. Returns the previous handler (ignored).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// The handler: a single lock-free atomic increment, which is
    /// async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        super::EPOCH.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install_handlers() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install_handlers() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; a no-op on
/// non-Unix platforms).
pub fn install() {
    INSTALL.call_once(sys::install_handlers);
}

/// The current interrupt epoch: the number of SIGINT/SIGTERM signals
/// delivered to this process since [`install`].
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::SeqCst)
}

/// A point-in-time capture of the interrupt epoch.
///
/// Campaign loops (and daemon sessions) capture a token when they
/// start and poll [`interrupted`](InterruptToken::interrupted); only
/// signals delivered *after* the capture register, so one interrupt
/// cannot leak into work started later in the same process.
#[derive(Clone, Copy, Debug)]
pub struct InterruptToken {
    start: u64,
}

impl InterruptToken {
    /// Captures the current epoch; signals delivered after this call
    /// make [`interrupted`](InterruptToken::interrupted) return true.
    pub fn current() -> Self {
        InterruptToken { start: epoch() }
    }

    /// Whether a SIGINT/SIGTERM arrived since this token was captured.
    pub fn interrupted(&self) -> bool {
        epoch() > self.start
    }
}

impl Default for InterruptToken {
    fn default() -> Self {
        Self::current()
    }
}

/// Whether an interrupt signal has arrived since the last [`reset`].
///
/// Thin wrapper over one process-global [`InterruptToken`] baseline,
/// kept for single-campaign callers; new multi-campaign code should
/// capture its own token via [`InterruptToken::current`].
pub fn interrupted() -> bool {
    epoch() > BASELINE.load(Ordering::SeqCst)
}

/// Acknowledges all signals delivered so far (for callers that handle
/// one interrupt and keep running, and for tests). Unlike the old
/// boolean clear, this moves the shared baseline forward and cannot
/// un-interrupt a token captured by concurrent work.
pub fn reset() {
    BASELINE.store(epoch(), Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn raise_sigterm() {
        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success());
    }

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(Instant::now() < deadline, "{what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Installs the handler, sends this process a real SIGTERM, and
    /// waits for the flag. (Campaign tests never read this global —
    /// they pass their own stop closures — so flipping it here cannot
    /// interfere with them.)
    #[test]
    fn real_signal_sets_the_flag() {
        install();
        reset();
        assert!(!interrupted());
        raise_sigterm();
        wait_for(interrupted, "signal never delivered");
        reset();
    }

    /// The daemon regression: an interrupt delivered during a first
    /// campaign must not poison a second campaign started afterwards
    /// in the same process. Two sequential "campaigns" each capture a
    /// token; the signal lands during the first.
    #[test]
    fn sequential_campaigns_survive_an_interrupt_during_the_first() {
        install();
        let first = InterruptToken::current();
        assert!(!first.interrupted());
        raise_sigterm();
        wait_for(|| first.interrupted(), "signal never delivered");
        // First campaign observed the interrupt and wound down. A
        // second campaign starting now captures a fresh token and must
        // NOT see the stale interrupt.
        let second = InterruptToken::current();
        assert!(
            !second.interrupted(),
            "interrupt from the first campaign leaked into the second"
        );
        // And a genuine new signal still interrupts the second.
        raise_sigterm();
        wait_for(|| second.interrupted(), "second signal never delivered");
        reset();
    }
}
