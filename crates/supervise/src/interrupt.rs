//! Graceful SIGINT/SIGTERM handling.
//!
//! [`install`] registers a minimal, async-signal-safe handler that only
//! sets an [`AtomicBool`]; the campaign loop polls [`interrupted`]
//! between trials and winds down cleanly — the journal is already
//! fsynced per record, so `^C` costs nothing that was finished.
//!
//! The registration itself is the single unsafe corner of this
//! workspace: a direct declaration of POSIX `signal(2)` (no external
//! crates are available offline). It is confined to this module behind
//! the crate-level `#![deny(unsafe_code)]`; everything observable from
//! outside is safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. Returns the previous handler (ignored).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// The handler: a single atomic store, which is async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install_handlers() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install_handlers() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; a no-op on
/// non-Unix platforms).
pub fn install() {
    INSTALL.call_once(sys::install_handlers);
}

/// Whether an interrupt signal has arrived since the last [`reset`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clears the interrupt flag (for callers that handle one interrupt
/// and keep running, and for tests).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Installs the handler, sends this process a real SIGTERM, and
    /// waits for the flag. (Campaign tests never read this global —
    /// they pass their own stop closures — so flipping it here cannot
    /// interfere with them.)
    #[test]
    fn real_signal_sets_the_flag() {
        install();
        reset();
        assert!(!interrupted());
        let status = std::process::Command::new("kill")
            .args(["-TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !interrupted() {
            assert!(Instant::now() < deadline, "signal never delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        reset();
    }
}
