//! The append-only campaign journal (`catbatch-journal/v1`).
//!
//! A journal is a JSONL file: one header line, then one record per
//! finished trial, each flushed **and fsynced** before the campaign
//! moves on — so after a crash the journal holds every trial that
//! finished, plus at most one torn trailing line (tolerated and
//! discarded on read). Records are [`TrialStats`] serialized verbatim;
//! replaying a record *is* re-obtaining the trial's result, which is
//! what makes resumed aggregates byte-identical.
//!
//! The header pins the schema version and a stable fingerprint of
//! `(instance, fault config, scheduler, budget)` — resuming against a
//! journal written for a different scenario is a typed error, not a
//! silently mixed data set.

use rigid_faults::TrialStats;
use rigid_time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// The journal schema this crate writes and reads.
pub const JOURNAL_SCHEMA: &str = "catbatch-journal/v1";

/// The first line of every journal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_SCHEMA`] for files this crate writes.
    pub schema: String,
    /// Stable hex fingerprint of the campaign scenario (see
    /// [`campaign_fingerprint`](crate::campaign_fingerprint)).
    pub fingerprint: String,
    /// Name of the scheduler under test.
    pub scheduler: String,
    /// Makespan of the fault-free baseline run, stored so a resumed
    /// campaign does not recompute it.
    pub fault_free_makespan: Time,
}

/// Why a journal could not be written or read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O failure (path and OS message).
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file has no header line.
    MissingHeader,
    /// The header names a schema this crate does not speak.
    SchemaMismatch {
        /// The schema string found in the file.
        found: String,
    },
    /// The journal was written for a different scenario.
    FingerprintMismatch {
        /// Fingerprint in the journal header.
        journal: String,
        /// Fingerprint of the campaign trying to resume.
        campaign: String,
    },
    /// A non-final line failed to parse — the file is damaged beyond
    /// the torn-tail tolerance.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// The parse error.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => write!(f, "journal {path}: {message}"),
            JournalError::MissingHeader => write!(f, "journal has no header line"),
            JournalError::SchemaMismatch { found } => write!(
                f,
                "journal schema {found:?} is not {JOURNAL_SCHEMA:?} — \
                 written by an incompatible version"
            ),
            JournalError::FingerprintMismatch { journal, campaign } => write!(
                f,
                "journal was written for scenario {journal} but this campaign is {campaign} \
                 (instance, fault config, scheduler, or budget differ)"
            ),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal line {line} is corrupt: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Appends records to a journal, fsyncing each one.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: std::path::PathBuf,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal and writes its header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let mut w = JournalWriter { file, path: path.to_path_buf() };
        let json = serde_json::to_string(header).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        w.write_line(&json)?;
        Ok(w)
    }

    /// Opens an existing journal for appending (resume). The caller is
    /// expected to have validated it with [`read_journal`] first.
    pub fn append(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Opens a validated journal for appending, first truncating any
    /// torn trailing damage `contents` identified — so a record appended
    /// after a crash artifact starts on its own line instead of merging
    /// into the artifact's bytes.
    pub fn append_validated(path: &Path, contents: &JournalContents) -> Result<Self, JournalError> {
        if contents.torn_tail {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err(path, e))?;
            file.set_len(contents.valid_len).map_err(|e| io_err(path, e))?;
            file.sync_data().map_err(|e| io_err(path, e))?;
        }
        JournalWriter::append(path)
    }

    /// Appends one trial record and fsyncs it to disk before returning
    /// — after this call the record survives a crash.
    pub fn record(&mut self, trial: &TrialStats) -> Result<(), JournalError> {
        self.record_buffered(trial)?;
        self.sync()
    }

    /// Appends one trial record **without** fsyncing — the group-commit
    /// half of [`record`](Self::record). The bytes reach the kernel
    /// (surviving a process kill) but not necessarily the disk; callers
    /// batch several records and then [`sync`](Self::sync) once, turning
    /// N fsync stalls into one. A power loss before the sync costs at
    /// most the unsynced suffix, which resume re-executes — and a torn
    /// write inside that suffix is exactly the trailing damage
    /// [`read_journal`] already tolerates.
    pub fn record_buffered(&mut self, trial: &TrialStats) -> Result<(), JournalError> {
        let json = serde_json::to_string(trial).map_err(|e| JournalError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        })?;
        let path = self.path.clone();
        self.file
            .write_all(format!("{json}\n").as_bytes())
            .map_err(|e| io_err(&path, e))
    }

    /// Fsyncs everything appended so far (the commit of a group-commit
    /// batch). A no-op-cheap call when nothing is pending.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let path = self.path.clone();
        self.file.sync_data().map_err(|e| io_err(&path, e))
    }

    fn write_line(&mut self, json: &str) -> Result<(), JournalError> {
        let path = self.path.clone();
        self.file
            .write_all(format!("{json}\n").as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&path, e))
    }
}

/// A parsed journal: the header, every intact trial record in file
/// order, and whether a torn trailing line was discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalContents {
    /// The header line.
    pub header: JournalHeader,
    /// Trial records, in the order they were written (duplicate seeds
    /// possible if a campaign was resumed with overlapping seed lists;
    /// the campaign layer keeps the first).
    pub trials: Vec<TrialStats>,
    /// Whether a torn trailing line (crash artifact) was discarded.
    pub torn_tail: bool,
    /// Length in bytes of the valid prefix (header + intact records).
    /// When `torn_tail` is set, everything past this offset is crash
    /// damage; [`JournalWriter::append_validated`] truncates to it.
    pub valid_len: u64,
}

/// Reads and validates a journal file.
///
/// Tolerates exactly the damage a kill can cause — a final line without
/// its newline, or a final line that does not parse — and rejects
/// everything else as typed [`JournalError`]s.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;

    // Only newline-terminated lines are complete records; a trailing
    // fragment is a torn write from a crash. Each entry carries the byte
    // offset just past its newline so the valid prefix length survives
    // into the result.
    let mut torn_tail = !text.is_empty() && !text.ends_with('\n');
    let mut offset = 0usize;
    let mut complete: Vec<(usize, &str, usize)> = Vec::new();
    for (i, l) in text.split_inclusive('\n').enumerate() {
        offset += l.len();
        if l.ends_with('\n') && !l.trim().is_empty() {
            complete.push((i + 1, l.trim(), offset));
        }
    }

    let Some(&(_, header_line, header_end)) = complete.first() else {
        return Err(JournalError::MissingHeader);
    };
    let header: JournalHeader = serde_json::from_str(header_line)
        .map_err(|_| JournalError::MissingHeader)?;
    if header.schema != JOURNAL_SCHEMA {
        return Err(JournalError::SchemaMismatch { found: header.schema });
    }

    let mut trials = Vec::new();
    let mut valid_len = header_end as u64;
    let records = &complete[1..];
    for (pos, &(lineno, line, end)) in records.iter().enumerate() {
        match serde_json::from_str::<TrialStats>(line) {
            Ok(t) => {
                trials.push(t);
                valid_len = end as u64;
            }
            // A garbled *final* record is a crash artifact (e.g. a torn
            // write that happened to end in '\n'); anything earlier
            // means real damage.
            Err(e) if pos + 1 == records.len() => {
                let _ = e;
                torn_tail = true;
            }
            Err(e) => {
                return Err(JournalError::Corrupt { line: lineno, message: e.to_string() })
            }
        }
    }
    Ok(JournalContents { header, trials, torn_tail, valid_len })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rigid_faults::TrialError;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per call; removed by [`TempFile::drop`].
    pub(crate) struct TempFile(pub PathBuf);

    impl TempFile {
        pub(crate) fn new(tag: &str) -> Self {
            static N: AtomicU64 = AtomicU64::new(0);
            let n = N.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir().join(format!(
                "catbatch-journal-test-{}-{tag}-{n}.jsonl",
                std::process::id()
            ));
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            schema: JOURNAL_SCHEMA.to_string(),
            fingerprint: "deadbeefdeadbeef".to_string(),
            scheduler: "catbatch".to_string(),
            fault_free_makespan: Time::from_int(15),
        }
    }

    fn trial(seed: u64) -> TrialStats {
        TrialStats {
            seed,
            outcome: if seed.is_multiple_of(2) {
                Ok(Time::from_int(seed as i64 + 20))
            } else {
                Err(TrialError::Panicked { message: format!("boom {seed}") })
            },
            failures: seed,
            wasted_area: Time::from_int(seed as i64),
            inflated_area: Time::ZERO,
            min_capacity: 8,
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let tmp = TempFile::new("roundtrip");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        for seed in 0..5 {
            w.record(&trial(seed)).unwrap();
        }
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.header, header());
        assert_eq!(j.trials, (0..5).map(trial).collect::<Vec<_>>());
        assert!(!j.torn_tail);
    }

    #[test]
    fn append_resumes_the_same_file() {
        let tmp = TempFile::new("append");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut w = JournalWriter::append(&tmp.0).unwrap();
        w.record(&trial(2)).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 2);
    }

    #[test]
    fn buffered_batch_plus_sync_equals_per_record_fsync_bytes() {
        // Group commit changes durability timing, never file contents.
        let synced = TempFile::new("gc-synced");
        let mut w = JournalWriter::create(&synced.0, &header()).unwrap();
        for seed in 0..10 {
            w.record(&trial(seed)).unwrap();
        }
        drop(w);

        let batched = TempFile::new("gc-batched");
        let mut w = JournalWriter::create(&batched.0, &header()).unwrap();
        for seed in 0..10 {
            w.record_buffered(&trial(seed)).unwrap();
            if seed % 4 == 3 {
                w.sync().unwrap();
            }
        }
        w.sync().unwrap();
        drop(w);

        assert_eq!(
            std::fs::read(&synced.0).unwrap(),
            std::fs::read(&batched.0).unwrap(),
            "group-committed journal must be byte-identical"
        );
    }

    #[test]
    fn torn_batch_tail_discards_only_the_torn_suffix() {
        // A crash mid-batch: some buffered records made it to disk whole,
        // the last one only partially. Reading back keeps every intact
        // record — including unsynced-but-complete ones — and discards
        // exactly the torn suffix, so resume re-executes only that trial.
        let tmp = TempFile::new("gc-torn-batch");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record_buffered(&trial(1)).unwrap();
        w.sync().unwrap();
        // An unsynced batch of two whole records...
        w.record_buffered(&trial(2)).unwrap();
        w.record_buffered(&trial(3)).unwrap();
        drop(w);
        // ...followed by a torn half-record from the crash instant.
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":4,\"outcome\":{\"O");
        std::fs::write(&tmp.0, text).unwrap();

        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials, vec![trial(1), trial(2), trial(3)]);
        assert!(j.torn_tail, "the torn suffix is a tolerated crash artifact");

        // The journal is resumable: append_validated truncates the torn
        // fragment, so the re-executed trial's record starts on its own
        // line and the next read sees a fully intact journal.
        let mut w = JournalWriter::append_validated(&tmp.0, &j).unwrap();
        w.record(&trial(4)).unwrap();
        drop(w);
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials, vec![trial(1), trial(2), trial(3), trial(4)]);
        assert!(!j.torn_tail, "truncation removed the crash artifact");
    }

    #[test]
    fn torn_tail_without_newline_is_discarded() {
        let tmp = TempFile::new("torn");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        // Simulate a crash mid-write: half a record, no newline.
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":2,\"outco");
        std::fs::write(&tmp.0, text).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert!(j.torn_tail);
    }

    #[test]
    fn garbled_final_line_is_torn_not_corrupt() {
        let tmp = TempFile::new("garbled");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":2}\n");
        std::fs::write(&tmp.0, text).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert!(j.torn_tail);
    }

    #[test]
    fn garbled_middle_line_is_corrupt() {
        let tmp = TempFile::new("corrupt");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("not json at all\n");
        std::fs::write(&tmp.0, text).unwrap();
        let mut w = JournalWriter::append(&tmp.0).unwrap();
        w.record(&trial(3)).unwrap();
        assert!(matches!(
            read_journal(&tmp.0),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
    }

    #[test]
    fn wrong_schema_is_typed() {
        let tmp = TempFile::new("schema");
        let mut h = header();
        h.schema = "catbatch-journal/v999".to_string();
        JournalWriter::create(&tmp.0, &h).unwrap();
        assert_eq!(
            read_journal(&tmp.0),
            Err(JournalError::SchemaMismatch { found: "catbatch-journal/v999".to_string() })
        );
    }

    #[test]
    fn empty_file_is_missing_header() {
        let tmp = TempFile::new("empty");
        std::fs::write(&tmp.0, "").unwrap();
        assert_eq!(read_journal(&tmp.0), Err(JournalError::MissingHeader));
    }

    #[test]
    fn missing_file_is_io_error() {
        let tmp = TempFile::new("missing");
        assert!(matches!(read_journal(&tmp.0), Err(JournalError::Io { .. })));
    }
}
