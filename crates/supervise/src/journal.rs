//! The append-only campaign journal (`catbatch-journal/v1`).
//!
//! A journal is a JSONL file: one header line, then one record per
//! finished trial, each flushed **and fsynced** before the campaign
//! moves on — so after a crash the journal holds every trial that
//! finished, plus at most one torn trailing line (tolerated and
//! discarded on read). Records are [`TrialStats`] serialized verbatim;
//! replaying a record *is* re-obtaining the trial's result, which is
//! what makes resumed aggregates byte-identical.
//!
//! The header pins the schema version and a stable fingerprint of
//! `(instance, fault config, scheduler, budget)` — resuming against a
//! journal written for a different scenario is a typed error, not a
//! silently mixed data set.

use rigid_faults::TrialStats;
use rigid_time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// The journal schema this crate writes and reads.
pub const JOURNAL_SCHEMA: &str = "catbatch-journal/v1";

/// The schema of a **shard** journal: a v1 header plus the shard
/// coordinates (`shard_index`/`shard_count`/seed range) pinned so
/// `merge` can validate that a set of shard files belongs together.
/// Plain (unsharded) journals keep the v1 schema byte-for-byte.
pub const SHARD_SCHEMA: &str = "catbatch-journal/v2";

/// The first line of every journal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// [`JOURNAL_SCHEMA`] for plain journals, [`SHARD_SCHEMA`] for
    /// shard journals.
    pub schema: String,
    /// Stable hex fingerprint of the campaign scenario (see
    /// [`campaign_fingerprint`](crate::campaign_fingerprint)).
    pub fingerprint: String,
    /// Name of the scheduler under test.
    pub scheduler: String,
    /// Makespan of the fault-free baseline run, stored so a resumed
    /// campaign does not recompute it.
    pub fault_free_makespan: Time,
}

/// The shard coordinates a [`SHARD_SCHEMA`] header pins: which slice of
/// the deduplicated seed space this file covers, out of how many.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// 1-based shard index.
    pub index: usize,
    /// Total number of shards in the plan.
    pub count: usize,
    /// First seed assigned to this shard (`0` when the slice is empty).
    pub seed_first: u64,
    /// Last seed assigned to this shard (`0` when the slice is empty).
    pub seed_last: u64,
    /// How many seeds the shard covers.
    pub seed_count: usize,
    /// Stable hex fingerprint of the assigned seed sequence — pins the
    /// exact slice without storing every seed in the header.
    pub seeds_fp: String,
}

impl fmt::Display for ShardInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}/{} ({} seed(s), fp {})",
            self.index, self.count, self.seed_count, self.seeds_fp
        )
    }
}

/// The on-disk shape of a [`SHARD_SCHEMA`] header line: every v1 field
/// followed by the shard coordinates, as one flat object. Kept separate
/// from [`JournalHeader`] so plain v1 headers serialize without any
/// shard fields (the vendored serde stub cannot skip `None`s).
#[derive(Serialize, Deserialize)]
struct ShardHeaderLine {
    schema: String,
    fingerprint: String,
    scheduler: String,
    fault_free_makespan: Time,
    shard_index: usize,
    shard_count: usize,
    seed_first: u64,
    seed_last: u64,
    seed_count: usize,
    seeds_fp: String,
}

/// Why a journal could not be written or read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O failure (path and OS message).
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file has no header line.
    MissingHeader,
    /// The header names a schema this crate does not speak.
    SchemaMismatch {
        /// The schema string found in the file.
        found: String,
    },
    /// The journal was written for a different scenario.
    FingerprintMismatch {
        /// Fingerprint in the journal header.
        journal: String,
        /// Fingerprint of the campaign trying to resume.
        campaign: String,
    },
    /// A non-final line failed to parse — the file is damaged beyond
    /// the torn-tail tolerance.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// The parse error.
        message: String,
    },
    /// The journal's shard header does not match the shard this
    /// campaign was asked to run (or one side is sharded and the other
    /// is not).
    ShardMismatch {
        /// Shard coordinates pinned in the journal ("unsharded" if none).
        journal: String,
        /// Shard coordinates of the resuming campaign.
        campaign: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => write!(f, "journal {path}: {message}"),
            JournalError::MissingHeader => write!(f, "journal has no header line"),
            JournalError::SchemaMismatch { found } => write!(
                f,
                "journal schema {found:?} is neither {JOURNAL_SCHEMA:?} nor {SHARD_SCHEMA:?} — \
                 written by an incompatible version"
            ),
            JournalError::FingerprintMismatch { journal, campaign } => write!(
                f,
                "journal was written for scenario {journal} but this campaign is {campaign} \
                 (instance, fault config, scheduler, or budget differ)"
            ),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal line {line} is corrupt: {message}")
            }
            JournalError::ShardMismatch { journal, campaign } => write!(
                f,
                "journal was written as {journal} but this campaign runs {campaign} — \
                 each shard must resume its own journal file"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Appends records to a journal, fsyncing each one.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: std::path::PathBuf,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal and writes its header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let mut w = JournalWriter { file, path: path.to_path_buf() };
        let json = serde_json::to_string(header).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        w.write_line(&json)?;
        Ok(w)
    }

    /// Creates (truncating) a fresh **shard** journal: a
    /// [`SHARD_SCHEMA`] header carrying the v1 fields plus the shard
    /// coordinates. `header.schema` is ignored — shard files always get
    /// [`SHARD_SCHEMA`].
    pub fn create_shard(
        path: &Path,
        header: &JournalHeader,
        shard: &ShardInfo,
    ) -> Result<Self, JournalError> {
        let line = ShardHeaderLine {
            schema: SHARD_SCHEMA.to_string(),
            fingerprint: header.fingerprint.clone(),
            scheduler: header.scheduler.clone(),
            fault_free_makespan: header.fault_free_makespan,
            shard_index: shard.index,
            shard_count: shard.count,
            seed_first: shard.seed_first,
            seed_last: shard.seed_last,
            seed_count: shard.seed_count,
            seeds_fp: shard.seeds_fp.clone(),
        };
        let file = File::create(path).map_err(|e| io_err(path, e))?;
        let mut w = JournalWriter { file, path: path.to_path_buf() };
        let json = serde_json::to_string(&line).map_err(|e| JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        w.write_line(&json)?;
        Ok(w)
    }

    /// Opens an existing journal for appending (resume). The caller is
    /// expected to have validated it with [`read_journal`] first.
    pub fn append(path: &Path) -> Result<Self, JournalError> {
        let file = open_validated_append(path, false, 0).map_err(|e| io_err(path, e))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Opens a validated journal for appending, first truncating any
    /// torn trailing damage `contents` identified — so a record appended
    /// after a crash artifact starts on its own line instead of merging
    /// into the artifact's bytes.
    pub fn append_validated(path: &Path, contents: &JournalContents) -> Result<Self, JournalError> {
        let file = open_validated_append(path, contents.torn_tail, contents.valid_len)
            .map_err(|e| io_err(path, e))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Appends one trial record and fsyncs it to disk before returning
    /// — after this call the record survives a crash.
    pub fn record(&mut self, trial: &TrialStats) -> Result<(), JournalError> {
        self.record_buffered(trial)?;
        self.sync()
    }

    /// Appends one trial record **without** fsyncing — the group-commit
    /// half of [`record`](Self::record). The bytes reach the kernel
    /// (surviving a process kill) but not necessarily the disk; callers
    /// batch several records and then [`sync`](Self::sync) once, turning
    /// N fsync stalls into one. A power loss before the sync costs at
    /// most the unsynced suffix, which resume re-executes — and a torn
    /// write inside that suffix is exactly the trailing damage
    /// [`read_journal`] already tolerates.
    pub fn record_buffered(&mut self, trial: &TrialStats) -> Result<(), JournalError> {
        let json = serde_json::to_string(trial).map_err(|e| JournalError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        })?;
        let path = self.path.clone();
        self.file
            .write_all(format!("{json}\n").as_bytes())
            .map_err(|e| io_err(&path, e))
    }

    /// Fsyncs everything appended so far (the commit of a group-commit
    /// batch). A no-op-cheap call when nothing is pending.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let path = self.path.clone();
        self.file.sync_data().map_err(|e| io_err(&path, e))
    }

    fn write_line(&mut self, json: &str) -> Result<(), JournalError> {
        let path = self.path.clone();
        self.file
            .write_all(format!("{json}\n").as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&path, e))
    }
}

/// The complete (newline-terminated, non-blank) lines of a JSONL file:
/// 1-based line number, trimmed text, and the byte offset just past the
/// terminating newline. Produced by [`complete_lines`], consumed by
/// [`scan_records`] — the shared first half of every journal reader.
#[derive(Clone, Debug)]
pub struct CompleteLines<'a> {
    /// `(line_number, trimmed_text, end_offset)` per complete line.
    pub lines: Vec<(usize, &'a str, usize)>,
    /// Whether the file ends in an unterminated fragment (a torn write
    /// from a crash).
    pub trailing_fragment: bool,
}

/// Splits journal text into its complete lines. Only newline-terminated
/// lines count — a trailing fragment is flagged, never parsed.
pub fn complete_lines(text: &str) -> CompleteLines<'_> {
    let trailing_fragment = !text.is_empty() && !text.ends_with('\n');
    let mut offset = 0usize;
    let mut lines = Vec::new();
    for (i, l) in text.split_inclusive('\n').enumerate() {
        offset += l.len();
        if l.ends_with('\n') && !l.trim().is_empty() {
            lines.push((i + 1, l.trim(), offset));
        }
    }
    CompleteLines { lines, trailing_fragment }
}

/// The records of a journal scan: everything after the header that
/// parsed, plus the shared crash-damage verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordScan<T> {
    /// Every record that parsed, in file order.
    pub records: Vec<T>,
    /// Whether trailing crash damage (an unterminated fragment or a
    /// garbled final line) was tolerated and excluded.
    pub torn_tail: bool,
    /// Length in bytes of the valid prefix (header + intact records).
    /// Everything past this offset is crash damage to truncate before
    /// appending.
    pub valid_len: u64,
}

/// Parses the record lines after the header with the shared torn-tail
/// tolerance rule every journal reader follows: a record that fails to
/// parse is a tolerated crash artifact **iff** it is the final complete
/// line (a torn write that happened to end in `'\n'`); any earlier
/// parse failure is real damage, returned as `(line_number, message)`.
pub fn scan_records<T>(
    scan: &CompleteLines<'_>,
    mut parse: impl FnMut(&str) -> Result<T, String>,
) -> Result<RecordScan<T>, (usize, String)> {
    let mut torn_tail = scan.trailing_fragment;
    let header_end = scan.lines.first().map_or(0, |&(_, _, end)| end);
    let mut records = Vec::new();
    let mut valid_len = header_end as u64;
    let lines = scan.lines.get(1..).unwrap_or_default();
    for (pos, &(lineno, line, end)) in lines.iter().enumerate() {
        match parse(line) {
            Ok(t) => {
                records.push(t);
                valid_len = end as u64;
            }
            Err(_) if pos + 1 == lines.len() => torn_tail = true,
            Err(message) => return Err((lineno, message)),
        }
    }
    Ok(RecordScan { records, torn_tail, valid_len })
}

/// Opens a journal file for appending, first truncating torn trailing
/// damage a scan identified — the shared repair step of every
/// resume-append path, so a record appended after a crash artifact
/// starts on its own line instead of merging into the artifact's bytes.
pub fn open_validated_append(
    path: &Path,
    torn_tail: bool,
    valid_len: u64,
) -> std::io::Result<File> {
    if torn_tail {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    OpenOptions::new().append(true).open(path)
}

/// A parsed journal: the header, every intact trial record in file
/// order, and whether a torn trailing line was discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalContents {
    /// The header line.
    pub header: JournalHeader,
    /// Shard coordinates when the header is a [`SHARD_SCHEMA`] one;
    /// `None` for plain v1 journals.
    pub shard: Option<ShardInfo>,
    /// Trial records, in the order they were written (duplicate seeds
    /// possible if a campaign was resumed with overlapping seed lists;
    /// the campaign layer keeps the first).
    pub trials: Vec<TrialStats>,
    /// Whether a torn trailing line (crash artifact) was discarded.
    pub torn_tail: bool,
    /// Length in bytes of the valid prefix (header + intact records).
    /// When `torn_tail` is set, everything past this offset is crash
    /// damage; [`JournalWriter::append_validated`] truncates to it.
    pub valid_len: u64,
}

/// Reads and validates a journal file (plain v1 or shard v2).
///
/// Tolerates exactly the damage a kill can cause — a final line without
/// its newline, or a final line that does not parse — and rejects
/// everything else as typed [`JournalError`]s.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let scan = complete_lines(&text);

    let Some(&(_, header_line, _)) = scan.lines.first() else {
        return Err(JournalError::MissingHeader);
    };
    let header: JournalHeader = serde_json::from_str(header_line)
        .map_err(|_| JournalError::MissingHeader)?;
    let shard = match header.schema.as_str() {
        s if s == JOURNAL_SCHEMA => None,
        s if s == SHARD_SCHEMA => {
            let line: ShardHeaderLine =
                serde_json::from_str(header_line).map_err(|e| JournalError::Corrupt {
                    line: 1,
                    message: format!("shard header is incomplete: {e}"),
                })?;
            Some(ShardInfo {
                index: line.shard_index,
                count: line.shard_count,
                seed_first: line.seed_first,
                seed_last: line.seed_last,
                seed_count: line.seed_count,
                seeds_fp: line.seeds_fp,
            })
        }
        _ => return Err(JournalError::SchemaMismatch { found: header.schema }),
    };

    let records = scan_records(&scan, |line| {
        serde_json::from_str::<TrialStats>(line).map_err(|e| e.to_string())
    })
    .map_err(|(line, message)| JournalError::Corrupt { line, message })?;
    Ok(JournalContents {
        header,
        shard,
        trials: records.records,
        torn_tail: records.torn_tail,
        valid_len: records.valid_len,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rigid_faults::TrialError;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per call; removed by [`TempFile::drop`].
    pub(crate) struct TempFile(pub PathBuf);

    impl TempFile {
        pub(crate) fn new(tag: &str) -> Self {
            static N: AtomicU64 = AtomicU64::new(0);
            let n = N.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir().join(format!(
                "catbatch-journal-test-{}-{tag}-{n}.jsonl",
                std::process::id()
            ));
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            schema: JOURNAL_SCHEMA.to_string(),
            fingerprint: "deadbeefdeadbeef".to_string(),
            scheduler: "catbatch".to_string(),
            fault_free_makespan: Time::from_int(15),
        }
    }

    fn trial(seed: u64) -> TrialStats {
        TrialStats {
            seed,
            outcome: if seed.is_multiple_of(2) {
                Ok(Time::from_int(seed as i64 + 20))
            } else {
                Err(TrialError::Panicked { message: format!("boom {seed}") })
            },
            failures: seed,
            wasted_area: Time::from_int(seed as i64),
            inflated_area: Time::ZERO,
            min_capacity: 8,
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let tmp = TempFile::new("roundtrip");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        for seed in 0..5 {
            w.record(&trial(seed)).unwrap();
        }
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.header, header());
        assert_eq!(j.shard, None, "a plain journal carries no shard info");
        assert_eq!(j.trials, (0..5).map(trial).collect::<Vec<_>>());
        assert!(!j.torn_tail);
    }

    fn shard_info() -> ShardInfo {
        ShardInfo {
            index: 2,
            count: 3,
            seed_first: 10,
            seed_last: 12,
            seed_count: 3,
            seeds_fp: "00ffee1122334455".to_string(),
        }
    }

    #[test]
    fn shard_header_roundtrips() {
        let tmp = TempFile::new("shard");
        let mut w = JournalWriter::create_shard(&tmp.0, &header(), &shard_info()).unwrap();
        w.record(&trial(10)).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.header.schema, SHARD_SCHEMA);
        assert_eq!(j.header.fingerprint, header().fingerprint);
        assert_eq!(j.header.fault_free_makespan, header().fault_free_makespan);
        assert_eq!(j.shard, Some(shard_info()));
        assert_eq!(j.trials, vec![trial(10)]);
    }

    #[test]
    fn shard_header_without_shard_fields_is_corrupt() {
        // A v2 schema string on a line with no shard coordinates is
        // damage, not a tolerable variant.
        let tmp = TempFile::new("shard-incomplete");
        JournalWriter::create(&tmp.0, &header()).unwrap();
        let text = std::fs::read_to_string(&tmp.0)
            .unwrap()
            .replace(JOURNAL_SCHEMA, SHARD_SCHEMA);
        std::fs::write(&tmp.0, text).unwrap();
        assert!(matches!(
            read_journal(&tmp.0),
            Err(JournalError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn shard_journal_tolerates_torn_tail_like_v1() {
        let tmp = TempFile::new("shard-torn");
        let mut w = JournalWriter::create_shard(&tmp.0, &header(), &shard_info()).unwrap();
        w.record(&trial(10)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":11,\"outco");
        std::fs::write(&tmp.0, text).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert!(j.torn_tail);
        assert_eq!(j.shard, Some(shard_info()));
    }

    #[test]
    fn append_resumes_the_same_file() {
        let tmp = TempFile::new("append");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut w = JournalWriter::append(&tmp.0).unwrap();
        w.record(&trial(2)).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 2);
    }

    #[test]
    fn buffered_batch_plus_sync_equals_per_record_fsync_bytes() {
        // Group commit changes durability timing, never file contents.
        let synced = TempFile::new("gc-synced");
        let mut w = JournalWriter::create(&synced.0, &header()).unwrap();
        for seed in 0..10 {
            w.record(&trial(seed)).unwrap();
        }
        drop(w);

        let batched = TempFile::new("gc-batched");
        let mut w = JournalWriter::create(&batched.0, &header()).unwrap();
        for seed in 0..10 {
            w.record_buffered(&trial(seed)).unwrap();
            if seed % 4 == 3 {
                w.sync().unwrap();
            }
        }
        w.sync().unwrap();
        drop(w);

        assert_eq!(
            std::fs::read(&synced.0).unwrap(),
            std::fs::read(&batched.0).unwrap(),
            "group-committed journal must be byte-identical"
        );
    }

    #[test]
    fn torn_batch_tail_discards_only_the_torn_suffix() {
        // A crash mid-batch: some buffered records made it to disk whole,
        // the last one only partially. Reading back keeps every intact
        // record — including unsynced-but-complete ones — and discards
        // exactly the torn suffix, so resume re-executes only that trial.
        let tmp = TempFile::new("gc-torn-batch");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record_buffered(&trial(1)).unwrap();
        w.sync().unwrap();
        // An unsynced batch of two whole records...
        w.record_buffered(&trial(2)).unwrap();
        w.record_buffered(&trial(3)).unwrap();
        drop(w);
        // ...followed by a torn half-record from the crash instant.
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":4,\"outcome\":{\"O");
        std::fs::write(&tmp.0, text).unwrap();

        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials, vec![trial(1), trial(2), trial(3)]);
        assert!(j.torn_tail, "the torn suffix is a tolerated crash artifact");

        // The journal is resumable: append_validated truncates the torn
        // fragment, so the re-executed trial's record starts on its own
        // line and the next read sees a fully intact journal.
        let mut w = JournalWriter::append_validated(&tmp.0, &j).unwrap();
        w.record(&trial(4)).unwrap();
        drop(w);
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials, vec![trial(1), trial(2), trial(3), trial(4)]);
        assert!(!j.torn_tail, "truncation removed the crash artifact");
    }

    #[test]
    fn torn_tail_without_newline_is_discarded() {
        let tmp = TempFile::new("torn");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        // Simulate a crash mid-write: half a record, no newline.
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":2,\"outco");
        std::fs::write(&tmp.0, text).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert!(j.torn_tail);
    }

    #[test]
    fn garbled_final_line_is_torn_not_corrupt() {
        let tmp = TempFile::new("garbled");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("{\"seed\":2}\n");
        std::fs::write(&tmp.0, text).unwrap();
        let j = read_journal(&tmp.0).unwrap();
        assert_eq!(j.trials.len(), 1);
        assert!(j.torn_tail);
    }

    #[test]
    fn garbled_middle_line_is_corrupt() {
        let tmp = TempFile::new("corrupt");
        let mut w = JournalWriter::create(&tmp.0, &header()).unwrap();
        w.record(&trial(1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&tmp.0).unwrap();
        text.push_str("not json at all\n");
        std::fs::write(&tmp.0, text).unwrap();
        let mut w = JournalWriter::append(&tmp.0).unwrap();
        w.record(&trial(3)).unwrap();
        assert!(matches!(
            read_journal(&tmp.0),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
    }

    #[test]
    fn wrong_schema_is_typed() {
        let tmp = TempFile::new("schema");
        let mut h = header();
        h.schema = "catbatch-journal/v999".to_string();
        JournalWriter::create(&tmp.0, &h).unwrap();
        assert_eq!(
            read_journal(&tmp.0),
            Err(JournalError::SchemaMismatch { found: "catbatch-journal/v999".to_string() })
        );
    }

    #[test]
    fn empty_file_is_missing_header() {
        let tmp = TempFile::new("empty");
        std::fs::write(&tmp.0, "").unwrap();
        assert_eq!(read_journal(&tmp.0), Err(JournalError::MissingHeader));
    }

    #[test]
    fn missing_file_is_io_error() {
        let tmp = TempFile::new("missing");
        assert!(matches!(read_journal(&tmp.0), Err(JournalError::Io { .. })));
    }
}
