//! # rigid-supervise — crash-safe campaign orchestration
//!
//! The paper's hardest experiments (the adaptive `Z^Alg_P(K)` gadget of
//! Section 6, large seeded fault sweeps) run thousands of trials; this
//! crate makes a campaign survive anything a trial can throw at it:
//!
//! * [`Supervisor`] — runs each trial in an isolated worker with
//!   `catch_unwind` panic capture, a per-trial wall-clock watchdog,
//!   bounded retries with deterministic exponential backoff, and
//!   quarantine of poison `(seed, scenario)` pairs. Every failure mode
//!   becomes a typed [`TrialError`](rigid_faults::TrialError) instead
//!   of process death.
//! * [`journal`] — an append-only JSONL journal (`catbatch-journal/v1`,
//!   plus the `/v2` shard header) with one fsynced record per finished
//!   trial, tolerant of a torn trailing line after a crash.
//! * [`run_campaign`] — the resumable campaign loop: replays journaled
//!   trials byte-for-byte (the seed's record *is* the result), executes
//!   only what is missing, and stops gracefully at interrupt points.
//! * [`shard`] — the deterministic planner behind `--shard i/N`: each
//!   process runs one balanced contiguous slice of the deduplicated
//!   seed space and writes its own journal shard.
//! * [`merge`] — fingerprint-validated shard merge: proves a set of
//!   shard journals belongs together and reconstitutes the
//!   single-process v1 journal byte-for-byte.
//! * [`interrupt`] — SIGINT/SIGTERM → an atomic flag the campaign loop
//!   polls between trials, so `^C` flushes the journal and reports
//!   partial stats instead of killing the process mid-write.
//!
//! See `docs/resilience.md` for the journal schema, resume semantics,
//! and the sharded-campaign workflow.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod interrupt;
pub mod journal;
pub mod merge;
pub mod shard;
pub mod supervisor;

pub use campaign::{
    campaign_fingerprint, run_campaign, CampaignError, CampaignOptions, CampaignOutcome,
};
pub use interrupt::InterruptToken;
pub use journal::{
    read_journal, JournalContents, JournalError, JournalHeader, JournalWriter, ShardInfo,
    JOURNAL_SCHEMA, SHARD_SCHEMA,
};
pub use merge::{merge_shards, MergeError, MergeReport};
pub use shard::ShardSpec;
pub use supervisor::{Supervisor, SupervisorPolicy};
