//! Fingerprint-validated merge of shard journals.
//!
//! `merge_shards` takes the journal files written by `--shard i/N`
//! processes, proves they belong together (same scenario fingerprint,
//! same shard count, a full set of distinct indices, each shard
//! complete against the seed slice its header pins, no seed recorded
//! twice), and reconstitutes a **plain v1 journal byte-identical to
//! what a single-process run over the full seed list would have
//! written** — the merged file replays through `--resume` exactly like
//! a serial journal, so aggregates and reports come out byte-identical
//! too.
//!
//! Every rejection is a typed [`MergeError`]; a validation failure
//! never writes (or leaves behind) an output file, so a bad merge can
//! not produce a corrupt aggregate. Torn shard tails are handled the
//! way every journal reader handles them — truncated at the valid
//! prefix and **reported**, never silently dropped: a shard whose tail
//! loss makes it incomplete is a [`MergeError::ShardIncomplete`] naming
//! the resume command that repairs it.
//!
//! Shard files are parsed on one thread each and consumed in shard
//! order through [`rigid_exec::ReorderBuffer`], the same primitive the
//! parallel campaign coordinator uses.

use crate::journal::{
    read_journal, JournalContents, JournalError, JournalHeader, JournalWriter, JOURNAL_SCHEMA,
};
use crate::shard::seeds_fingerprint;
use rigid_exec::{ReorderBuffer, ReorderWait};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How often the merge coordinator wakes while waiting for an
/// out-of-order parse result.
const MERGE_POLL: Duration = Duration::from_millis(5);

/// Why a set of shard journals could not be merged. Every variant is a
/// validation failure detected **before** the output file is written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// A shard file could not be read or parsed as a journal.
    Journal {
        /// The offending file.
        path: String,
        /// The underlying journal error.
        error: JournalError,
    },
    /// `merge_shards` was called with no input files.
    NoInputs,
    /// An input is a plain (unsharded) v1 journal — there is nothing to
    /// merge it with.
    NotSharded {
        /// The offending file.
        path: String,
    },
    /// Two shards were written for different scenarios.
    FingerprintMismatch {
        /// Fingerprint of the first shard (the reference).
        reference: String,
        /// The disagreeing file.
        path: String,
        /// Its fingerprint.
        found: String,
    },
    /// Shards agree on the fingerprint but not on the scheduler name or
    /// baseline makespan — header damage, not a mergeable set.
    ScenarioMismatch {
        /// The disagreeing file.
        path: String,
        /// What differed.
        message: String,
    },
    /// A shard was planned against a different total shard count.
    ShardCountMismatch {
        /// The disagreeing file.
        path: String,
        /// Shard count of the first input.
        expected: usize,
        /// Shard count found in this file.
        found: usize,
    },
    /// Two inputs carry the same shard index.
    DuplicateShardIndex {
        /// The duplicated 1-based index.
        index: usize,
        /// The first file claiming it.
        first: String,
        /// The second file claiming it.
        second: String,
    },
    /// Not every shard of the plan is present.
    MissingShards {
        /// The absent 1-based indices.
        missing: Vec<usize>,
        /// The plan's shard count.
        count: usize,
    },
    /// The same seed is recorded by two shards — the inputs were not
    /// produced by one consistent plan.
    SeedOverlap {
        /// The seed recorded twice.
        seed: u64,
        /// 1-based index of the shard that recorded it first.
        first: usize,
        /// 1-based index of the shard that recorded it again.
        second: usize,
    },
    /// A shard's records do not match the seed slice its header pins
    /// (wrong seeds, wrong order, or extra records).
    SeedSetMismatch {
        /// The offending file.
        path: String,
        /// Its 1-based shard index.
        index: usize,
    },
    /// A shard holds fewer records than its header pins — it was killed
    /// before finishing and must be resumed before merging.
    ShardIncomplete {
        /// The offending file.
        path: String,
        /// Its 1-based shard index.
        index: usize,
        /// The plan's shard count.
        count: usize,
        /// Records actually present.
        recorded: usize,
        /// Records the header pins.
        expected: usize,
        /// Whether a torn trailing record was discarded on read.
        torn_tail: bool,
    },
    /// The merged output could not be written (the partial file is
    /// removed).
    Write {
        /// The output path.
        path: String,
        /// The underlying journal error.
        message: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Journal { path, error } => write!(f, "shard {path}: {error}"),
            MergeError::NoInputs => write!(f, "merge needs at least one shard journal"),
            MergeError::NotSharded { path } => write!(
                f,
                "{path} is a plain (unsharded) journal — only `--shard i/N` journals merge"
            ),
            MergeError::FingerprintMismatch { reference, path, found } => write!(
                f,
                "{path} was written for scenario {found} but the first shard is scenario \
                 {reference} — shards of different campaigns cannot merge"
            ),
            MergeError::ScenarioMismatch { path, message } => {
                write!(f, "{path} disagrees with the first shard: {message}")
            }
            MergeError::ShardCountMismatch { path, expected, found } => write!(
                f,
                "{path} was planned as one of {found} shard(s) but the first input says \
                 {expected} — mixed plans cannot merge"
            ),
            MergeError::DuplicateShardIndex { index, first, second } => write!(
                f,
                "shard index {index} appears twice: {first} and {second}"
            ),
            MergeError::MissingShards { missing, count } => {
                let list: Vec<String> = missing.iter().map(|i| format!("{i}/{count}")).collect();
                write!(f, "missing shard(s) {} — merge needs all {count}", list.join(", "))
            }
            MergeError::SeedOverlap { seed, first, second } => write!(
                f,
                "seed {seed} is recorded by both shard {first} and shard {second} — \
                 the inputs were not produced by one consistent plan"
            ),
            MergeError::SeedSetMismatch { path, index } => write!(
                f,
                "{path} (shard {index}) records different seeds than its header pins — \
                 the file does not match its own plan"
            ),
            MergeError::ShardIncomplete {
                path,
                index,
                count,
                recorded,
                expected,
                torn_tail,
            } => write!(
                f,
                "{path} holds {recorded} of {expected} record(s){} — resume it with \
                 `--shard {index}/{count} --journal {path} --resume`, then merge again",
                if *torn_tail { " (plus a torn trailing record, discarded)" } else { "" }
            ),
            MergeError::Write { path, message } => {
                write!(f, "cannot write merged journal {path}: {message}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// What a successful merge produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeReport {
    /// The reconstructed plain v1 header written to the output.
    pub header: JournalHeader,
    /// How many shard files merged.
    pub shards: usize,
    /// Total trial records in the merged journal.
    pub trials: usize,
    /// Shards whose journals carried torn trailing damage (discarded on
    /// read and reported here — the shards were still complete).
    pub torn_tails: Vec<usize>,
}

fn display(path: &Path) -> String {
    path.display().to_string()
}

/// Parses every shard file on its own thread, yielding results in input
/// order through a [`ReorderBuffer`].
fn parse_all(inputs: &[PathBuf]) -> Vec<Result<JournalContents, MergeError>> {
    let (tx, rx) = mpsc::channel();
    let mut parsed = Vec::with_capacity(inputs.len());
    thread::scope(|scope| {
        for (i, path) in inputs.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let result = read_journal(path)
                    .map_err(|error| MergeError::Journal { path: display(path), error });
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut reorder = ReorderBuffer::new(rx);
        for (i, path) in inputs.iter().enumerate() {
            let result = loop {
                match reorder.recv_index(i, MERGE_POLL) {
                    Ok(r) => break r,
                    Err(ReorderWait::Tick) => continue,
                    Err(ReorderWait::Disconnected) => {
                        break Err(MergeError::Journal {
                            path: display(path),
                            error: JournalError::Io {
                                path: display(path),
                                message: "shard parser thread died".to_string(),
                            },
                        })
                    }
                }
            };
            parsed.push(result);
        }
    });
    parsed
}

/// Validates a set of shard journals and writes the merged plain v1
/// journal to `out`. See the module docs for the validation rules; on
/// any [`MergeError`] the output file is not left behind.
pub fn merge_shards(inputs: &[PathBuf], out: &Path) -> Result<MergeReport, MergeError> {
    if inputs.is_empty() {
        return Err(MergeError::NoInputs);
    }
    let mut shards: Vec<(usize, JournalContents)> = Vec::with_capacity(inputs.len());
    for (i, result) in parse_all(inputs).into_iter().enumerate() {
        shards.push((i, result?));
    }

    // Cross-shard header validation, against the first input.
    let reference = shards[0]
        .1
        .shard
        .clone()
        .ok_or_else(|| MergeError::NotSharded { path: display(&inputs[0]) })?;
    let ref_header = shards[0].1.header.clone();
    let mut by_index: BTreeMap<usize, usize> = BTreeMap::new();
    for &(i, ref contents) in &shards {
        let path = display(&inputs[i]);
        let info = contents
            .shard
            .as_ref()
            .ok_or_else(|| MergeError::NotSharded { path: path.clone() })?;
        if contents.header.fingerprint != ref_header.fingerprint {
            return Err(MergeError::FingerprintMismatch {
                reference: ref_header.fingerprint.clone(),
                path,
                found: contents.header.fingerprint.clone(),
            });
        }
        if contents.header.scheduler != ref_header.scheduler {
            return Err(MergeError::ScenarioMismatch {
                path,
                message: format!(
                    "scheduler {:?} vs {:?}",
                    contents.header.scheduler, ref_header.scheduler
                ),
            });
        }
        if contents.header.fault_free_makespan != ref_header.fault_free_makespan {
            return Err(MergeError::ScenarioMismatch {
                path,
                message: format!(
                    "fault-free baseline {} vs {}",
                    contents.header.fault_free_makespan, ref_header.fault_free_makespan
                ),
            });
        }
        if info.count != reference.count {
            return Err(MergeError::ShardCountMismatch {
                path,
                expected: reference.count,
                found: info.count,
            });
        }
        if let Some(&prev) = by_index.get(&info.index) {
            return Err(MergeError::DuplicateShardIndex {
                index: info.index,
                first: display(&inputs[prev]),
                second: path,
            });
        }
        by_index.insert(info.index, i);
    }
    let missing: Vec<usize> =
        (1..=reference.count).filter(|i| !by_index.contains_key(i)).collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards { missing, count: reference.count });
    }

    // Per-shard completeness (against the seed slice the header pins)
    // and cross-shard seed disjointness.
    let mut seed_owner: BTreeMap<u64, usize> = BTreeMap::new();
    let mut torn_tails = Vec::new();
    for (&index, &i) in &by_index {
        let contents = &shards[i].1;
        let info = contents.shard.as_ref().expect("validated above");
        let path = display(&inputs[i]);
        if contents.trials.len() < info.seed_count {
            return Err(MergeError::ShardIncomplete {
                path,
                index,
                count: info.count,
                recorded: contents.trials.len(),
                expected: info.seed_count,
                torn_tail: contents.torn_tail,
            });
        }
        let recorded: Vec<u64> = contents.trials.iter().map(|t| t.seed).collect();
        if seeds_fingerprint(&recorded) != info.seeds_fp {
            return Err(MergeError::SeedSetMismatch { path, index });
        }
        for seed in recorded {
            if let Some(&owner) = seed_owner.get(&seed) {
                return Err(MergeError::SeedOverlap { seed, first: owner, second: index });
            }
            seed_owner.insert(seed, index);
        }
        if contents.torn_tail {
            torn_tails.push(index);
        }
    }

    // All validation passed: reconstitute the plain v1 journal, shard
    // records concatenated in shard-index order — exactly the byte
    // sequence a single-process run writes.
    let header = JournalHeader {
        schema: JOURNAL_SCHEMA.to_string(),
        fingerprint: ref_header.fingerprint,
        scheduler: ref_header.scheduler,
        fault_free_makespan: ref_header.fault_free_makespan,
    };
    let write = || -> Result<usize, JournalError> {
        let mut w = JournalWriter::create(out, &header)?;
        let mut trials = 0;
        for &i in by_index.values() {
            for t in &shards[i].1.trials {
                w.record_buffered(t)?;
                trials += 1;
            }
        }
        w.sync()?;
        Ok(trials)
    };
    match write() {
        Ok(trials) => Ok(MergeReport { header, shards: shards.len(), trials, torn_tails }),
        Err(e) => {
            let _ = std::fs::remove_file(out);
            Err(MergeError::Write { path: display(out), message: e.to_string() })
        }
    }
}
