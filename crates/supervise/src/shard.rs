//! The deterministic shard planner: partitions a campaign's
//! deduplicated seed space across `--shard i/N` processes.
//!
//! Every process is handed the **full** seed list and independently
//! computes the same plan: deduplicate preserving first occurrence
//! (matching the campaign's replay semantics, where a repeated seed is
//! journaled once), then slice into `N` contiguous, balanced chunks.
//! Shard `i` runs chunk `i` and writes its own journal whose
//! [`SHARD_SCHEMA`](crate::journal::SHARD_SCHEMA) header pins the shard
//! coordinates plus a stable fingerprint of the assigned seed sequence,
//! so `merge` can later prove the shard files belong together and are
//! complete. Because the chunks cover the deduplicated list in order,
//! concatenating the shard journals by index reconstitutes the exact
//! byte sequence a single-process run would have written.

use crate::journal::ShardInfo;
use rigid_dag::StableHasher;

/// Which slice of a campaign one process runs: shard `index` of
/// `count`, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parses an `i/N` shard argument, rejecting every malformed or
    /// out-of-range shape with an actionable message: `0/N` (the index
    /// is 1-based), `i > N`, and `N = 0` are all errors.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let bad = || format!("bad shard value {s:?}: expected INDEX/COUNT, e.g. 2/8");
        let (index, count) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = index.trim().parse().map_err(|_| bad())?;
        let count: usize = count.trim().parse().map_err(|_| bad())?;
        if count == 0 {
            return Err(format!("bad shard value {s:?}: shard count must be at least 1"));
        }
        if index == 0 {
            return Err(format!(
                "bad shard value {s:?}: shard index is 1-based (the first shard is 1/{count})"
            ));
        }
        if index > count {
            return Err(format!(
                "bad shard value {s:?}: shard index {index} exceeds shard count {count}"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// The seeds this shard runs: deduplicate the full list preserving
    /// first occurrence, then take the `index`-th of `count` balanced
    /// contiguous chunks. Deterministic — every process computes the
    /// same partition from the same seed list.
    pub fn plan(&self, seeds: &[u64]) -> Vec<u64> {
        let deduped = dedup_seeds(seeds);
        let d = deduped.len();
        let lo = (self.index - 1) * d / self.count;
        let hi = self.index * d / self.count;
        deduped[lo..hi].to_vec()
    }

    /// The shard coordinates to pin in the journal header, computed
    /// from the seeds [`plan`](Self::plan) assigned.
    pub fn info(&self, assigned: &[u64]) -> ShardInfo {
        ShardInfo {
            index: self.index,
            count: self.count,
            seed_first: assigned.first().copied().unwrap_or(0),
            seed_last: assigned.last().copied().unwrap_or(0),
            seed_count: assigned.len(),
            seeds_fp: seeds_fingerprint(assigned),
        }
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Deduplicates a seed list preserving first occurrence — the order the
/// campaign journals records in.
pub fn dedup_seeds(seeds: &[u64]) -> Vec<u64> {
    let mut seen = std::collections::BTreeSet::new();
    seeds.iter().copied().filter(|s| seen.insert(*s)).collect()
}

/// Stable hex fingerprint of a seed sequence (length plus every seed,
/// in order) — what a shard header pins so `merge` can verify a shard
/// file covers exactly the seeds the plan assigned it.
pub fn seeds_fingerprint(seeds: &[u64]) -> String {
    let mut h = StableHasher::new();
    h.write_u64(seeds.len() as u64);
    for &s in seeds {
        h.write_u64(s);
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_specs() {
        assert_eq!(ShardSpec::parse("1/1").unwrap(), ShardSpec { index: 1, count: 1 });
        assert_eq!(ShardSpec::parse("2/8").unwrap(), ShardSpec { index: 2, count: 8 });
        assert_eq!(ShardSpec::parse("8/8").unwrap(), ShardSpec { index: 8, count: 8 });
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_range() {
        for bad in ["", "3", "/", "2/", "/3", "a/b", "1/0", "0/4", "5/4", "-1/4"] {
            let err = ShardSpec::parse(bad).expect_err(bad);
            assert!(err.contains(&format!("{bad:?}")), "{bad}: {err}");
        }
        assert!(ShardSpec::parse("0/4").unwrap_err().contains("1-based"));
        assert!(ShardSpec::parse("5/4").unwrap_err().contains("exceeds"));
        assert!(ShardSpec::parse("1/0").unwrap_err().contains("at least 1"));
    }

    #[test]
    fn plan_partitions_the_dedup_space() {
        let seeds: Vec<u64> = (0..10).chain(3..6).collect(); // dups at the end
        let spec = |i| ShardSpec { index: i, count: 3 };
        let chunks: Vec<Vec<u64>> = (1..=3).map(|i| spec(i).plan(&seeds)).collect();
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        assert_eq!(all, (0..10).collect::<Vec<u64>>(), "chunks cover dedup list in order");
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn more_shards_than_seeds_yields_empty_chunks() {
        let seeds = [7u64, 8];
        let plans: Vec<Vec<u64>> =
            (1..=4).map(|i| ShardSpec { index: i, count: 4 }.plan(&seeds)).collect();
        let all: Vec<u64> = plans.iter().flatten().copied().collect();
        assert_eq!(all, vec![7, 8]);
        assert!(plans.iter().any(Vec::is_empty));
    }

    #[test]
    fn info_pins_the_assigned_slice() {
        let spec = ShardSpec { index: 2, count: 2 };
        let assigned = spec.plan(&[5, 6, 7, 8]);
        let info = spec.info(&assigned);
        assert_eq!((info.index, info.count), (2, 2));
        assert_eq!((info.seed_first, info.seed_last, info.seed_count), (7, 8, 2));
        assert_eq!(info.seeds_fp, seeds_fingerprint(&[7, 8]));
        assert_ne!(info.seeds_fp, seeds_fingerprint(&[7]), "fingerprint sees length");
        assert_ne!(info.seeds_fp, seeds_fingerprint(&[8, 7]), "fingerprint sees order");
    }

    #[test]
    fn single_shard_covers_everything() {
        let seeds = [4u64, 2, 4, 9];
        let plan = ShardSpec { index: 1, count: 1 }.plan(&seeds);
        assert_eq!(plan, vec![4, 2, 9]);
    }
}
