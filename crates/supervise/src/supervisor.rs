//! Trial supervision: isolated execution with panic capture, watchdog
//! timeouts, bounded retries, and quarantine.
//!
//! A [`Supervisor`] never lets a trial take the process down. Panics
//! are captured with `catch_unwind`; hangs are cut off by running the
//! attempt on a detached worker thread and waiting with a timeout (the
//! hung worker itself cannot be killed — it is *leaked*, which is the
//! documented cost of a watchdog without process isolation); repeated
//! offenders are quarantined so a poison `(seed, scenario)` pair is
//! attempted at most once per campaign.

use rigid_faults::{panic_message, TrialError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Retry and watchdog policy for supervised trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Per-attempt wall-clock limit. `None` runs attempts inline with
    /// panic capture only (no worker thread, nothing can leak).
    pub watchdog: Option<Duration>,
    /// Extra attempts after the first one panics or times out. Typed
    /// trial errors (engine violations, blown budgets) are
    /// deterministic and are **not** retried.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based): `backoff_base * 2^(k-1)`.
    /// The schedule is deterministic — no jitter — so supervised
    /// campaigns stay reproducible.
    pub backoff_base: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            watchdog: None,
            max_retries: 1,
            backoff_base: Duration::ZERO,
        }
    }
}

/// Runs trials in isolation and tracks poison `(seed, scenario)` pairs.
///
/// The scenario is a caller-chosen stable fingerprint (see
/// [`campaign_fingerprint`](crate::campaign_fingerprint)); quarantine
/// keys on `(seed, scenario)` so the same seed under a different config
/// is still attempted.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    quarantined: BTreeMap<(u64, u64), u32>,
}

impl Supervisor {
    /// A supervisor with the given policy and an empty quarantine.
    pub fn new(policy: SupervisorPolicy) -> Self {
        Supervisor { policy, quarantined: BTreeMap::new() }
    }

    /// The active policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Whether `(seed, scenario)` has been quarantined.
    pub fn is_quarantined(&self, seed: u64, scenario: u64) -> bool {
        self.quarantined.contains_key(&(seed, scenario))
    }

    /// The quarantined `(seed, scenario)` pairs with the attempts each
    /// consumed, in key order.
    pub fn quarantined(&self) -> Vec<((u64, u64), u32)> {
        self.quarantined.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Runs one trial under supervision. `make_attempt` is called once
    /// per attempt and must hand back a self-contained job (retries
    /// need a fresh one because a panicked job is consumed).
    ///
    /// Returns the job's value, or a typed [`TrialError`]:
    /// [`Panicked`](TrialError::Panicked) /
    /// [`TimedOut`](TrialError::TimedOut) from the final attempt, or
    /// [`Quarantined`](TrialError::Quarantined) if the pair was already
    /// poisoned by an earlier call.
    pub fn run_trial<T, A, F>(
        &mut self,
        seed: u64,
        scenario: u64,
        mut make_attempt: F,
    ) -> Result<T, TrialError>
    where
        T: Send + 'static,
        A: FnOnce() -> T + Send + 'static,
        F: FnMut() -> A,
    {
        if let Some(&attempts) = self.quarantined.get(&(seed, scenario)) {
            return Err(TrialError::Quarantined { attempts });
        }
        let attempts = 1 + self.policy.max_retries;
        let mut last = TrialError::Quarantined { attempts: 0 };
        for attempt in 0..attempts {
            if attempt > 0 {
                let shift = (attempt - 1).min(16);
                let backoff = self.policy.backoff_base.saturating_mul(1u32 << shift);
                if !backoff.is_zero() {
                    thread::sleep(backoff);
                }
            }
            match self.run_attempt(make_attempt()) {
                Ok(value) => return Ok(value),
                Err(err) => last = err,
            }
        }
        self.quarantined.insert((seed, scenario), attempts);
        Err(last)
    }

    /// Runs one attempt: inline when no watchdog is configured,
    /// otherwise on a detached worker thread with a receive timeout. A
    /// timed-out worker keeps running detached until it finishes or the
    /// process exits — a leak, but one that cannot corrupt campaign
    /// state, because its result channel is already closed.
    fn run_attempt<T, A>(&self, job: A) -> Result<T, TrialError>
    where
        T: Send + 'static,
        A: FnOnce() -> T + Send + 'static,
    {
        let Some(limit) = self.policy.watchdog else {
            return catch_unwind(AssertUnwindSafe(job))
                .map_err(|p| TrialError::Panicked { message: panic_message(p) });
        };
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            let _ = tx.send(result);
        });
        match rx.recv_timeout(limit) {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(p)) => Err(TrialError::Panicked { message: panic_message(p) }),
            Err(_) => Err(TrialError::TimedOut { limit_ms: limit.as_millis() as u64 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn policy(watchdog_ms: Option<u64>, retries: u32) -> SupervisorPolicy {
        SupervisorPolicy {
            watchdog: watchdog_ms.map(Duration::from_millis),
            max_retries: retries,
            backoff_base: Duration::ZERO,
        }
    }

    #[test]
    fn success_passes_through() {
        let mut sup = Supervisor::new(policy(None, 0));
        assert_eq!(sup.run_trial(1, 7, || || 42), Ok(42));
        assert!(!sup.is_quarantined(1, 7));
    }

    #[test]
    fn panic_is_captured_retried_and_quarantined() {
        let calls = Arc::new(AtomicU32::new(0));
        let mut sup = Supervisor::new(policy(None, 2));
        let c = calls.clone();
        let result: Result<u32, _> = sup.run_trial(5, 9, move || {
            let c = c.clone();
            move || {
                c.fetch_add(1, Ordering::SeqCst);
                panic!("kaboom {}", c.load(Ordering::SeqCst));
            }
        });
        match result {
            Err(TrialError::Panicked { message }) => assert!(message.contains("kaboom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        assert!(sup.is_quarantined(5, 9));
        assert_eq!(sup.quarantined(), vec![((5, 9), 3)]);

        // A second call does not re-run the poison pair.
        let again: Result<u32, _> = sup.run_trial(5, 9, || || unreachable!("quarantined"));
        assert_eq!(again, Err(TrialError::Quarantined { attempts: 3 }));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recovery_on_retry_is_a_success() {
        let calls = Arc::new(AtomicU32::new(0));
        let mut sup = Supervisor::new(policy(None, 3));
        let c = calls.clone();
        let result = sup.run_trial(2, 2, move || {
            let c = c.clone();
            move || {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                "ok"
            }
        });
        assert_eq!(result, Ok("ok"));
        assert!(!sup.is_quarantined(2, 2));
    }

    #[test]
    fn watchdog_cuts_off_a_hang() {
        let mut sup = Supervisor::new(policy(Some(40), 0));
        let result: Result<u32, _> = sup.run_trial(3, 3, || {
            || {
                // Far beyond the watchdog; the worker thread is leaked.
                thread::sleep(Duration::from_secs(600));
                0
            }
        });
        assert_eq!(result, Err(TrialError::TimedOut { limit_ms: 40 }));
        assert!(sup.is_quarantined(3, 3));
    }

    #[test]
    fn watchdog_lets_fast_trials_through() {
        let mut sup = Supervisor::new(policy(Some(5_000), 0));
        assert_eq!(sup.run_trial(4, 4, || || 7), Ok(7));
    }

    #[test]
    fn quarantine_is_scenario_scoped() {
        let mut sup = Supervisor::new(policy(None, 0));
        let _: Result<(), _> = sup.run_trial(1, 100, || || panic!("bad config"));
        assert!(sup.is_quarantined(1, 100));
        // Same seed, different scenario: runs fine.
        assert_eq!(sup.run_trial(1, 200, || || 1), Ok(1));
    }
}
