//! Trial supervision: isolated execution with panic capture, watchdog
//! timeouts, bounded retries, and quarantine.
//!
//! A [`Supervisor`] never lets a trial take the process down. Panics
//! are captured with `catch_unwind`; hangs are cut off by running the
//! attempt on a pooled watchdog thread ([`rigid_exec::WatchdogPool`])
//! and waiting with a timeout — the hung worker cannot be killed, but it
//! is *pooled*, not leaked: it finishes its stale job eventually and
//! returns to the pool, and a campaign of 10 000 watchdogged trials
//! shares a handful of threads instead of spawning one each. Repeated
//! offenders are quarantined so a poison `(seed, scenario)` pair is
//! attempted at most once per campaign.

use rigid_exec::{WatchdogOutcome, WatchdogPool};
use rigid_faults::{panic_message, TrialError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// Retry and watchdog policy for supervised trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Per-attempt wall-clock limit. `None` runs attempts inline with
    /// panic capture only (no worker thread, nothing can hang over).
    pub watchdog: Option<Duration>,
    /// Extra attempts after the first one panics or times out. Typed
    /// trial errors (engine violations, blown budgets) are
    /// deterministic and are **not** retried.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based): `backoff_base * 2^(k-1)`.
    /// The schedule is deterministic — no jitter — so supervised
    /// campaigns stay reproducible.
    pub backoff_base: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            watchdog: None,
            max_retries: 1,
            backoff_base: Duration::ZERO,
        }
    }
}

/// Runs one attempt under `policy`: inline when no watchdog is
/// configured, otherwise on a pooled watchdog thread with a receive
/// timeout. A timed-out job keeps running on its pool thread until it
/// finishes — it cannot corrupt campaign state (its result channel is
/// already closed) and its thread rejoins the pool afterwards.
fn run_attempt<T, A>(policy: &SupervisorPolicy, job: A) -> Result<T, TrialError>
where
    T: Send + 'static,
    A: FnOnce() -> T + Send + 'static,
{
    let Some(limit) = policy.watchdog else {
        return catch_unwind(AssertUnwindSafe(job))
            .map_err(|p| TrialError::Panicked { message: panic_message(p) });
    };
    match WatchdogPool::global().run(job, limit) {
        WatchdogOutcome::Completed(value) => Ok(value),
        WatchdogOutcome::Panicked(p) => Err(TrialError::Panicked { message: panic_message(p) }),
        WatchdogOutcome::TimedOut => {
            Err(TrialError::TimedOut { limit_ms: limit.as_millis() as u64 })
        }
    }
}

/// The retry loop shared by [`Supervisor::run_trial`] and the parallel
/// campaign workers: run attempts (with deterministic backoff) until one
/// succeeds or the budget is spent. On exhaustion returns the final
/// error plus the attempt count for the quarantine record.
fn attempt_loop<T, A, F>(policy: &SupervisorPolicy, mut make_attempt: F) -> Result<T, (TrialError, u32)>
where
    T: Send + 'static,
    A: FnOnce() -> T + Send + 'static,
    F: FnMut() -> A,
{
    let attempts = 1 + policy.max_retries;
    let mut last = TrialError::Quarantined { attempts: 0 };
    for attempt in 0..attempts {
        if attempt > 0 {
            let shift = (attempt - 1).min(16);
            let backoff = policy.backoff_base.saturating_mul(1u32 << shift);
            if !backoff.is_zero() {
                thread::sleep(backoff);
            }
        }
        match run_attempt(policy, make_attempt()) {
            Ok(value) => return Ok(value),
            Err(err) => last = err,
        }
    }
    Err((last, attempts))
}

/// A quarantine shared by concurrent campaign workers: the same
/// `(seed, scenario)` poison tracking as [`Supervisor`], behind a lock.
///
/// Campaign workers operate on *distinct* seeds (duplicates are deduped
/// into replays before dispatch), so entries never race for the same key
/// and the map's contents — like everything else in a campaign — are
/// independent of worker interleaving.
#[derive(Debug, Default)]
pub(crate) struct SharedQuarantine {
    map: Mutex<BTreeMap<(u64, u64), u32>>,
}

impl SharedQuarantine {
    pub(crate) fn new() -> Self {
        SharedQuarantine::default()
    }

    fn check(&self, seed: u64, scenario: u64) -> Option<u32> {
        self.map
            .lock()
            .expect("quarantine lock poisoned")
            .get(&(seed, scenario))
            .copied()
    }

    fn poison(&self, seed: u64, scenario: u64, attempts: u32) {
        self.map
            .lock()
            .expect("quarantine lock poisoned")
            .insert((seed, scenario), attempts);
    }
}

/// The supervision envelope used by parallel campaign workers: identical
/// semantics to [`Supervisor::run_trial`], with the quarantine shared
/// across threads.
pub(crate) fn run_supervised<T, A, F>(
    policy: &SupervisorPolicy,
    quarantine: &SharedQuarantine,
    seed: u64,
    scenario: u64,
    make_attempt: F,
) -> Result<T, TrialError>
where
    T: Send + 'static,
    A: FnOnce() -> T + Send + 'static,
    F: FnMut() -> A,
{
    if let Some(attempts) = quarantine.check(seed, scenario) {
        return Err(TrialError::Quarantined { attempts });
    }
    attempt_loop(policy, make_attempt).map_err(|(last, attempts)| {
        quarantine.poison(seed, scenario, attempts);
        last
    })
}

/// Runs trials in isolation and tracks poison `(seed, scenario)` pairs.
///
/// The scenario is a caller-chosen stable fingerprint (see
/// [`campaign_fingerprint`](crate::campaign_fingerprint)); quarantine
/// keys on `(seed, scenario)` so the same seed under a different config
/// is still attempted.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    quarantined: BTreeMap<(u64, u64), u32>,
}

impl Supervisor {
    /// A supervisor with the given policy and an empty quarantine.
    pub fn new(policy: SupervisorPolicy) -> Self {
        Supervisor { policy, quarantined: BTreeMap::new() }
    }

    /// The active policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Whether `(seed, scenario)` has been quarantined.
    pub fn is_quarantined(&self, seed: u64, scenario: u64) -> bool {
        self.quarantined.contains_key(&(seed, scenario))
    }

    /// The quarantined `(seed, scenario)` pairs with the attempts each
    /// consumed, in key order.
    pub fn quarantined(&self) -> Vec<((u64, u64), u32)> {
        self.quarantined.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Runs one trial under supervision. `make_attempt` is called once
    /// per attempt and must hand back a self-contained job (retries
    /// need a fresh one because a panicked job is consumed).
    ///
    /// Returns the job's value, or a typed [`TrialError`]:
    /// [`Panicked`](TrialError::Panicked) /
    /// [`TimedOut`](TrialError::TimedOut) from the final attempt, or
    /// [`Quarantined`](TrialError::Quarantined) if the pair was already
    /// poisoned by an earlier call.
    pub fn run_trial<T, A, F>(
        &mut self,
        seed: u64,
        scenario: u64,
        make_attempt: F,
    ) -> Result<T, TrialError>
    where
        T: Send + 'static,
        A: FnOnce() -> T + Send + 'static,
        F: FnMut() -> A,
    {
        if let Some(&attempts) = self.quarantined.get(&(seed, scenario)) {
            return Err(TrialError::Quarantined { attempts });
        }
        attempt_loop(&self.policy, make_attempt).map_err(|(last, attempts)| {
            self.quarantined.insert((seed, scenario), attempts);
            last
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn policy(watchdog_ms: Option<u64>, retries: u32) -> SupervisorPolicy {
        SupervisorPolicy {
            watchdog: watchdog_ms.map(Duration::from_millis),
            max_retries: retries,
            backoff_base: Duration::ZERO,
        }
    }

    #[test]
    fn success_passes_through() {
        let mut sup = Supervisor::new(policy(None, 0));
        assert_eq!(sup.run_trial(1, 7, || || 42), Ok(42));
        assert!(!sup.is_quarantined(1, 7));
    }

    #[test]
    fn panic_is_captured_retried_and_quarantined() {
        let calls = Arc::new(AtomicU32::new(0));
        let mut sup = Supervisor::new(policy(None, 2));
        let c = calls.clone();
        let result: Result<u32, _> = sup.run_trial(5, 9, move || {
            let c = c.clone();
            move || {
                c.fetch_add(1, Ordering::SeqCst);
                panic!("kaboom {}", c.load(Ordering::SeqCst));
            }
        });
        match result {
            Err(TrialError::Panicked { message }) => assert!(message.contains("kaboom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        assert!(sup.is_quarantined(5, 9));
        assert_eq!(sup.quarantined(), vec![((5, 9), 3)]);

        // A second call does not re-run the poison pair.
        let again: Result<u32, _> = sup.run_trial(5, 9, || || unreachable!("quarantined"));
        assert_eq!(again, Err(TrialError::Quarantined { attempts: 3 }));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recovery_on_retry_is_a_success() {
        let calls = Arc::new(AtomicU32::new(0));
        let mut sup = Supervisor::new(policy(None, 3));
        let c = calls.clone();
        let result = sup.run_trial(2, 2, move || {
            let c = c.clone();
            move || {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                "ok"
            }
        });
        assert_eq!(result, Ok("ok"));
        assert!(!sup.is_quarantined(2, 2));
    }

    #[test]
    fn watchdog_cuts_off_a_hang() {
        let mut sup = Supervisor::new(policy(Some(40), 0));
        let result: Result<u32, _> = sup.run_trial(3, 3, || {
            || {
                // Far beyond the watchdog; the pool worker stays busy
                // with this stale job until it finishes.
                thread::sleep(Duration::from_secs(2));
                0
            }
        });
        assert_eq!(result, Err(TrialError::TimedOut { limit_ms: 40 }));
        assert!(sup.is_quarantined(3, 3));
    }

    #[test]
    fn watchdog_lets_fast_trials_through() {
        let mut sup = Supervisor::new(policy(Some(5_000), 0));
        assert_eq!(sup.run_trial(4, 4, || || 7), Ok(7));
    }

    #[test]
    fn watchdog_attempts_share_pooled_threads() {
        // Many sequential watchdogged trials must not spawn a thread
        // each: the global pool grows only when attempts overlap (e.g. a
        // stale hung job from another test still occupies a worker), so
        // it stays far below the trial count.
        let before = WatchdogPool::global().spawned_threads();
        let mut sup = Supervisor::new(policy(Some(5_000), 0));
        for seed in 0..100 {
            assert_eq!(sup.run_trial(seed, 1, || move || seed), Ok(seed));
        }
        // `spawned_threads` counts *live* workers since idle reaping
        // landed, so another test's worker exiting mid-run could make
        // the count shrink — saturate instead of underflowing.
        let grown = WatchdogPool::global().spawned_threads().saturating_sub(before);
        assert!(
            grown <= 1,
            "100 sequential watchdog trials grew the pool by {grown} threads"
        );
    }

    #[test]
    fn quarantine_is_scenario_scoped() {
        let mut sup = Supervisor::new(policy(None, 0));
        let _: Result<(), _> = sup.run_trial(1, 100, || || panic!("bad config"));
        assert!(sup.is_quarantined(1, 100));
        // Same seed, different scenario: runs fine.
        assert_eq!(sup.run_trial(1, 200, || || 1), Ok(1));
    }

    #[test]
    fn shared_quarantine_matches_supervisor_semantics() {
        let q = SharedQuarantine::new();
        let p = policy(None, 1);
        let r: Result<u32, _> = run_supervised(&p, &q, 7, 70, || || panic!("always"));
        assert!(matches!(r, Err(TrialError::Panicked { .. })));
        let again: Result<u32, _> = run_supervised(&p, &q, 7, 70, || || 1);
        assert_eq!(again, Err(TrialError::Quarantined { attempts: 2 }));
        // Different scenario is unaffected.
        assert_eq!(run_supervised(&p, &q, 7, 71, || || 1), Ok(1));
    }
}
