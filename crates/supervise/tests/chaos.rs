//! Crash-chaos harness: real shard subprocesses are killed — by the
//! deterministic abort hook (SIGKILL-equivalent: no destructors, no
//! flush) and by an external `SIGKILL` — at arbitrary points, resumed,
//! and merged; the merged journal must be byte-identical to the journal
//! of an unkilled single-process run. A separate test delivers a real
//! `SIGTERM` inside the parallel group-commit dirty window and checks
//! the journal survives as a clean prefix.
//!
//! Subprocesses are re-executions of this test binary: the parent
//! spawns `current_exe() chaos_child_main --exact` with a role string
//! in `RIGID_CHAOS_ROLE`; [`chaos_child_main`] is a no-op without the
//! variable, so a plain `cargo test` never forks.

#![cfg(unix)]

use catbatch::CatBatch;
use rigid_dag::gen::{layered, TaskSampler};
use rigid_dag::paper::figure3;
use rigid_dag::Instance;
use rigid_faults::FaultConfig;
use rigid_sim::RunBudget;
use rigid_supervise::{
    interrupt, merge_shards, read_journal, run_campaign, CampaignOptions, ShardSpec,
};
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const ROLE_VAR: &str = "RIGID_CHAOS_ROLE";
const SEEDS: [u64; 12] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60];

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "rigid-chaos-{}-{}-{tag}.jsonl",
        std::process::id(),
        n
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn config() -> FaultConfig {
    FaultConfig::fail_stop(250, 2)
}

/// The scenario for the SIGTERM dirty-window test: big enough that a
/// signal ~80 ms in lands mid-campaign.
fn big_instance() -> Instance {
    layered(42, 10, 10, &TaskSampler::default_mix(), 8)
}

fn big_seeds() -> Vec<u64> {
    (1..=1200).collect()
}

fn options(journal: PathBuf, resume: bool, shard: Option<ShardSpec>) -> CampaignOptions {
    CampaignOptions {
        journal: Some(journal),
        resume,
        budget: RunBudget::UNLIMITED,
        shard,
        ..CampaignOptions::default()
    }
}

fn spec(index: usize, count: usize) -> ShardSpec {
    ShardSpec::parse(&format!("{index}/{count}")).expect("valid spec")
}

/// Spawns a re-execution of this test binary with the given role.
fn child(role: String) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("own test binary"));
    cmd.arg("chaos_child_main")
        .arg("--exact")
        .arg("--nocapture")
        .env(ROLE_VAR, role)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    cmd
}

/// The child entry point: a no-op unless [`ROLE_VAR`] is set, in which
/// case the role string selects and parameterizes the scenario.
///
/// * `shard:<journal>:<i>:<n>:<abort_after>` — runs shard `i/n` of the
///   standard campaign, calling `std::process::abort()` (no flush, no
///   destructors — the userspace effect of `kill -9`) after
///   `abort_after` stop-closure polls. In the serial campaign loop the
///   stop closure runs exactly once per trial, so `abort_after = k`
///   journals exactly `k` records and then dies.
/// * `sigterm:<journal>` — installs the interrupt handler and runs the
///   big campaign with `--jobs 2` (the group-commit path), stopping at
///   the real signal the parent sends; prints a `CHAOS-RESULT` line.
#[test]
fn chaos_child_main() {
    let Ok(role) = std::env::var(ROLE_VAR) else { return };
    let parts: Vec<&str> = role.split(':').collect();
    match parts[0] {
        "shard" => {
            let journal = PathBuf::from(parts[1]);
            let index: usize = parts[2].parse().unwrap();
            let count: usize = parts[3].parse().unwrap();
            let abort_after: u64 = parts[4].parse().unwrap();
            let polls = AtomicU64::new(0);
            run_campaign(
                &figure3(),
                &config(),
                &SEEDS,
                &options(journal, false, Some(spec(index, count))),
                move || {
                    if polls.fetch_add(1, Ordering::Relaxed) >= abort_after {
                        std::process::abort();
                    }
                    false
                },
                CatBatch::new,
            )
            .expect("shard campaign");
        }
        "sigterm" => {
            let journal = PathBuf::from(parts[1]);
            interrupt::install();
            interrupt::reset();
            // Handshake: the parent waits for this line before timing
            // its signal, so child startup cost cannot race it.
            println!("CHAOS-START");
            std::io::stdout().flush().expect("flush handshake");
            let outcome = run_campaign(
                &big_instance(),
                &config(),
                &big_seeds(),
                &CampaignOptions {
                    jobs: 2,
                    ..options(journal, false, None)
                },
                interrupt::interrupted,
                CatBatch::new,
            )
            .expect("sigterm campaign");
            println!(
                "CHAOS-RESULT interrupted={} executed={}",
                outcome.interrupted, outcome.executed
            );
        }
        other => panic!("unknown chaos role {other:?}"),
    }
}

/// The tentpole acceptance test: a 3-shard campaign where shard 2 is
/// killed by the deterministic abort hook, shard 3 by an external
/// `SIGKILL`, both are resumed, and the merge reproduces the unkilled
/// single-process journal byte-for-byte.
#[test]
fn killed_shards_resume_and_merge_to_canonical_bytes() {
    // Ground truth: the unkilled single-process journal.
    let canon = TempFile(temp_path("canon"));
    let serial = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(canon.0.clone(), false, None),
        || false,
        CatBatch::new,
    )
    .expect("serial campaign");

    let shards: Vec<TempFile> = (1..=3).map(|i| TempFile(temp_path(&format!("s{i}")))).collect();

    // Shard 1 runs to completion in a real subprocess.
    let status = child(format!("shard:{}:1:3:{}", shards[0].0.display(), u64::MAX))
        .status()
        .expect("spawn shard 1");
    assert!(status.success(), "shard 1 completes");

    // Shard 2 aborts deterministically after journaling 2 records.
    let status = child(format!("shard:{}:2:3:2", shards[1].0.display()))
        .status()
        .expect("spawn shard 2");
    assert!(!status.success(), "shard 2 dies mid-campaign");
    let damaged = read_journal(&shards[1].0).expect("read aborted shard 2");
    assert_eq!(damaged.trials.len(), 2, "exactly 2 records survive the abort");
    assert!(!damaged.torn_tail, "per-record fsync leaves no torn tail");

    // Shard 3 is SIGKILLed externally at an arbitrary point.
    let mut proc3 = child(format!("shard:{}:3:3:{}", shards[2].0.display(), u64::MAX))
        .spawn()
        .expect("spawn shard 3");
    std::thread::sleep(Duration::from_millis(30));
    let _ = proc3.kill();
    let _ = proc3.wait();

    // An incomplete shard set must be rejected, not silently merged.
    let out = TempFile(temp_path("merged"));
    let input_paths: Vec<PathBuf> = shards.iter().map(|f| f.0.clone()).collect();
    if read_journal(&shards[2].0).map_or(true, |c| c.trials.len() < serial.stats.trials.len()) {
        merge_shards(&input_paths, &out.0).expect_err("killed shards cannot merge yet");
        assert!(!out.0.exists());
    }

    // Resume both killed shards in-process (the resume path is
    // identical in and out of process) and merge.
    for i in [2usize, 3] {
        run_campaign(
            &figure3(),
            &config(),
            &SEEDS,
            &options(shards[i - 1].0.clone(), true, Some(spec(i, 3))),
            || false,
            CatBatch::new,
        )
        .expect("resume killed shard");
    }
    let report = merge_shards(&input_paths, &out.0).expect("merge after resume");
    assert_eq!(report.shards, 3);
    assert_eq!(report.trials, SEEDS.len());

    assert_eq!(
        fs::read(&canon.0).expect("canonical bytes"),
        fs::read(&out.0).expect("merged bytes"),
        "kill + resume + merge must reproduce the unkilled journal byte-for-byte"
    );

    // And the merged journal replays to the canonical aggregates.
    let replayed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(out.0.clone(), true, None),
        || false,
        CatBatch::new,
    )
    .expect("replay merged journal");
    assert_eq!(replayed.executed, 0);
    assert_eq!(replayed.stats, serial.stats);
}

/// Randomized kill points: every shard of a 2-shard campaign is aborted
/// at a different deterministic-but-arbitrary record count, resumed,
/// and merged; the result must always equal the canonical bytes.
#[test]
fn every_abort_point_merges_to_canonical_bytes() {
    let canon = TempFile(temp_path("sweep-canon"));
    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(canon.0.clone(), false, None),
        || false,
        CatBatch::new,
    )
    .expect("serial campaign");
    let canon_bytes = fs::read(&canon.0).expect("canonical bytes");

    // SEEDS splits 6 + 6 over two shards; abort each shard after k
    // records for a spread of crash points (0 = killed before any
    // record).
    for (k1, k2) in [(0u64, 4u64), (3, 0), (5, 1)] {
        let shards: Vec<TempFile> =
            (1..=2).map(|i| TempFile(temp_path(&format!("sweep-{k1}-{k2}-{i}")))).collect();
        for (i, k) in [(1usize, k1), (2, k2)] {
            let status = child(format!("shard:{}:{i}:2:{k}", shards[i - 1].0.display()))
                .status()
                .expect("spawn shard");
            assert!(!status.success(), "shard {i} dies after {k} record(s)");
            run_campaign(
                &figure3(),
                &config(),
                &SEEDS,
                &options(shards[i - 1].0.clone(), true, Some(spec(i, 2))),
                || false,
                CatBatch::new,
            )
            .expect("resume shard");
        }
        let out = TempFile(temp_path(&format!("sweep-{k1}-{k2}-merged")));
        let input_paths: Vec<PathBuf> = shards.iter().map(|f| f.0.clone()).collect();
        merge_shards(&input_paths, &out.0).expect("merge resumed shards");
        assert_eq!(
            fs::read(&out.0).expect("merged bytes"),
            canon_bytes,
            "abort points ({k1}, {k2}) must still merge to canonical bytes"
        );
    }
}

/// SIGTERM inside the parallel group-commit dirty window: buffered
/// records are flushed on the way out, the journal is a clean prefix of
/// the canonical serial journal, and a resume completes the campaign to
/// the canonical aggregates.
#[test]
fn sigterm_in_group_commit_window_leaves_clean_prefix() {
    // Canonical serial run of the big scenario (also the resume target).
    let canon = TempFile(temp_path("term-canon"));
    let serial = run_campaign(
        &big_instance(),
        &config(),
        &big_seeds(),
        &options(canon.0.clone(), false, None),
        || false,
        CatBatch::new,
    )
    .expect("serial big campaign");
    let canon_bytes = fs::read(&canon.0).expect("canonical bytes");

    // The child prints CHAOS-START right before its campaign begins;
    // the signal goes out a beat later, landing inside the run. A
    // signal is still inherently racy against completion, so retry if
    // the campaign finished first (in practice the first attempt
    // lands).
    let mut landed = None;
    for attempt in 0..4 {
        let journal = TempFile(temp_path(&format!("term-{attempt}")));
        let mut proc = child(format!("sigterm:{}", journal.0.display()))
            .spawn()
            .expect("spawn sigterm child");
        let stdout = proc.stdout.take().expect("piped child stdout");
        let mut reader = BufReader::new(stdout);
        let mut result = None;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("read child stdout") == 0 {
                break;
            }
            if line.contains("CHAOS-START") {
                std::thread::sleep(Duration::from_millis(40));
                let _ = Command::new("kill")
                    .arg("-TERM")
                    .arg(proc.id().to_string())
                    .status()
                    .expect("send SIGTERM");
            }
            if let Some(rest) = line.split("CHAOS-RESULT").nth(1) {
                result = Some(rest.trim().to_string());
            }
        }
        let status = proc.wait().expect("child exit");
        assert!(status.success(), "SIGTERM is handled, not fatal");
        let result = result.expect("child prints a CHAOS-RESULT line");
        if result.contains("interrupted=true") {
            landed = Some((journal, result));
            break;
        }
        // Too late — the campaign had already finished. Try again.
    }
    let (journal, result) = landed.expect("SIGTERM landed mid-campaign within 4 attempts");
    let executed: usize = result
        .split("executed=")
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .expect("executed count in CHAOS-RESULT");

    // Every executed trial was flushed before exit; nothing is torn.
    let contents = read_journal(&journal.0).expect("read interrupted journal");
    assert!(!contents.torn_tail, "graceful SIGTERM leaves no torn tail");
    assert_eq!(
        contents.trials.len(),
        executed,
        "the group-commit buffer is flushed on interrupt"
    );

    // The interrupted parallel journal is a clean byte prefix of the
    // canonical serial journal.
    let bytes = fs::read(&journal.0).expect("interrupted bytes");
    assert!(
        canon_bytes.starts_with(&bytes),
        "interrupted journal must be a clean prefix of the canonical journal \
         ({} vs {} bytes)",
        bytes.len(),
        canon_bytes.len()
    );

    // Resuming completes the campaign to the canonical aggregates and
    // the canonical bytes.
    let resumed = run_campaign(
        &big_instance(),
        &config(),
        &big_seeds(),
        &options(journal.0.clone(), true, None),
        || false,
        CatBatch::new,
    )
    .expect("resume after SIGTERM");
    assert_eq!(resumed.replayed, executed);
    assert_eq!(resumed.stats, serial.stats);
    assert_eq!(fs::read(&journal.0).unwrap(), canon_bytes);
}
