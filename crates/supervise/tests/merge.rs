//! Shard-merge integration tests: shard journals written by real
//! campaigns merge into a journal byte-identical to the single-process
//! run, and every way a shard set can be inconsistent is rejected with
//! its specific typed error — without leaving an output file behind.

use catbatch::CatBatch;
use rigid_dag::paper::figure3;
use rigid_faults::FaultConfig;
use rigid_sim::RunBudget;
use rigid_supervise::{
    merge_shards, run_campaign, CampaignOptions, MergeError, ShardSpec,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const SEEDS: [u64; 7] = [11, 22, 33, 44, 55, 66, 77];

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "rigid-merge-{}-{}-{tag}.jsonl",
        std::process::id(),
        n
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn config() -> FaultConfig {
    FaultConfig::fail_stop(250, 2)
}

fn options(journal: PathBuf, shard: Option<ShardSpec>) -> CampaignOptions {
    CampaignOptions {
        journal: Some(journal),
        resume: false,
        budget: RunBudget::UNLIMITED,
        shard,
        ..CampaignOptions::default()
    }
}

fn spec(index: usize, count: usize) -> ShardSpec {
    ShardSpec::parse(&format!("{index}/{count}")).expect("valid spec")
}

/// Runs one shard of the standard campaign into `path`.
fn run_shard(path: &std::path::Path, shard: ShardSpec, seeds: &[u64], config: &FaultConfig) {
    run_campaign(
        &figure3(),
        config,
        seeds,
        &options(path.to_path_buf(), Some(shard)),
        || false,
        CatBatch::new,
    )
    .expect("shard campaign");
}

/// Writes all `count` shards of the standard campaign, returning the
/// guard-wrapped paths in shard order.
fn run_all_shards(count: usize, tag: &str) -> Vec<TempFile> {
    (1..=count)
        .map(|i| {
            let f = TempFile(temp_path(&format!("{tag}-{i}")));
            run_shard(&f.0, spec(i, count), &SEEDS, &config());
            f
        })
        .collect()
}

fn paths(files: &[TempFile]) -> Vec<PathBuf> {
    files.iter().map(|f| f.0.clone()).collect()
}

#[test]
fn merged_journal_is_byte_identical_to_single_process_run() {
    let canon = TempFile(temp_path("canon"));
    let serial = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(canon.0.clone(), None),
        || false,
        CatBatch::new,
    )
    .expect("serial campaign");

    let shards = run_all_shards(3, "ok");
    let out = TempFile(temp_path("merged"));
    let report = merge_shards(&paths(&shards), &out.0).expect("merge");
    assert_eq!(report.shards, 3);
    assert_eq!(report.trials, SEEDS.len());
    assert!(report.torn_tails.is_empty());

    assert_eq!(
        fs::read(&canon.0).expect("canon bytes"),
        fs::read(&out.0).expect("merged bytes"),
        "merged journal must equal the single-process journal byte-for-byte"
    );

    // The merged journal replays like the serial one: nothing executes,
    // aggregates come out identical.
    let replayed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &CampaignOptions {
            journal: Some(out.0.clone()),
            resume: true,
            budget: RunBudget::UNLIMITED,
            ..CampaignOptions::default()
        },
        || false,
        CatBatch::new,
    )
    .expect("replay merged journal");
    assert_eq!(replayed.executed, 0);
    assert_eq!(replayed.replayed, SEEDS.len());
    assert_eq!(replayed.stats, serial.stats);
}

#[test]
fn merge_accepts_inputs_in_any_order() {
    let shards = run_all_shards(3, "order");
    let mut shuffled = paths(&shards);
    shuffled.swap(0, 2);
    let out = TempFile(temp_path("order-merged"));
    let report = merge_shards(&shuffled, &out.0).expect("merge out of order");
    assert_eq!(report.trials, SEEDS.len());

    let canonical = run_all_shards(3, "order-ref");
    let out2 = TempFile(temp_path("order-ref-merged"));
    merge_shards(&paths(&canonical), &out2.0).expect("merge in order");
    assert_eq!(
        fs::read(&out.0).unwrap(),
        fs::read(&out2.0).unwrap(),
        "input order must not change the merged bytes"
    );
}

#[test]
fn merge_rejects_empty_input_set() {
    let out = temp_path("empty-merged");
    assert_eq!(merge_shards(&[], &out), Err(MergeError::NoInputs));
    assert!(!out.exists());
}

#[test]
fn merge_rejects_a_plain_unsharded_journal() {
    let plain = TempFile(temp_path("plain"));
    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(plain.0.clone(), None),
        || false,
        CatBatch::new,
    )
    .expect("plain campaign");
    let out = temp_path("plain-merged");
    let err =
        merge_shards(std::slice::from_ref(&plain.0), &out).expect_err("plain journal");
    assert!(matches!(err, MergeError::NotSharded { .. }), "{err}");
    assert!(!out.exists(), "a rejected merge must not leave an output file");
}

#[test]
fn merge_rejects_shards_of_different_scenarios() {
    let a = TempFile(temp_path("fp-a"));
    run_shard(&a.0, spec(1, 2), &SEEDS, &config());
    let b = TempFile(temp_path("fp-b"));
    run_shard(&b.0, spec(2, 2), &SEEDS, &FaultConfig::fail_stop(900, 5));
    let out = temp_path("fp-merged");
    let err = merge_shards(&[a.0.clone(), b.0.clone()], &out).expect_err("fingerprints differ");
    assert!(matches!(err, MergeError::FingerprintMismatch { .. }), "{err}");
    assert!(!out.exists());
}

#[test]
fn merge_rejects_a_duplicated_shard_index() {
    let a = TempFile(temp_path("dup-a"));
    run_shard(&a.0, spec(1, 2), &SEEDS, &config());
    let b = TempFile(temp_path("dup-b"));
    run_shard(&b.0, spec(1, 2), &SEEDS, &config());
    let out = temp_path("dup-merged");
    let err = merge_shards(&[a.0.clone(), b.0.clone()], &out).expect_err("same index twice");
    assert!(
        matches!(err, MergeError::DuplicateShardIndex { index: 1, .. }),
        "{err}"
    );
    assert!(!out.exists());
}

#[test]
fn merge_rejects_mixed_shard_counts() {
    let a = TempFile(temp_path("count-a"));
    run_shard(&a.0, spec(1, 2), &SEEDS, &config());
    let b = TempFile(temp_path("count-b"));
    run_shard(&b.0, spec(2, 3), &SEEDS, &config());
    let out = temp_path("count-merged");
    let err = merge_shards(&[a.0.clone(), b.0.clone()], &out).expect_err("mixed plans");
    assert!(
        matches!(err, MergeError::ShardCountMismatch { expected: 2, found: 3, .. }),
        "{err}"
    );
    assert!(!out.exists());
}

#[test]
fn merge_rejects_an_incomplete_shard_set() {
    let shards = run_all_shards(3, "missing");
    let subset = vec![shards[0].0.clone(), shards[2].0.clone()];
    let out = temp_path("missing-merged");
    let err = merge_shards(&subset, &out).expect_err("shard 2 absent");
    match err {
        MergeError::MissingShards { missing, count } => {
            assert_eq!(missing, vec![2]);
            assert_eq!(count, 3);
        }
        other => panic!("expected MissingShards, got {other}"),
    }
    assert!(!out.exists());
}

#[test]
fn merge_rejects_overlapping_seed_slices() {
    // Two "shards" planned over *different* seed lists that share seed
    // 11: each header is self-consistent, but the set is not disjoint.
    let a = TempFile(temp_path("overlap-a"));
    run_shard(&a.0, spec(1, 2), &[11, 22, 33, 44], &config());
    let b = TempFile(temp_path("overlap-b"));
    run_shard(&b.0, spec(2, 2), &[55, 66, 11, 77], &config());
    let out = temp_path("overlap-merged");
    let err = merge_shards(&[a.0.clone(), b.0.clone()], &out).expect_err("seed 11 twice");
    assert!(
        matches!(err, MergeError::SeedOverlap { seed: 11, first: 1, second: 2 }),
        "{err}"
    );
    assert!(!out.exists());
}

#[test]
fn merge_rejects_a_killed_shard_and_names_the_resume_command() {
    let a = TempFile(temp_path("killed-a"));
    run_shard(&a.0, spec(1, 2), &SEEDS, &config());
    // Shard 2 is stopped after one trial, as a kill between trials
    // would leave it.
    let b = TempFile(temp_path("killed-b"));
    let polls = AtomicUsize::new(0);
    let partial = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(b.0.clone(), Some(spec(2, 2))),
        || polls.fetch_add(1, Ordering::SeqCst) >= 1,
        CatBatch::new,
    )
    .expect("interrupted shard");
    assert!(partial.interrupted);

    let out = temp_path("killed-merged");
    let err = merge_shards(&[a.0.clone(), b.0.clone()], &out).expect_err("shard 2 incomplete");
    match &err {
        MergeError::ShardIncomplete { index, count, recorded, expected, .. } => {
            assert_eq!(*index, 2);
            assert_eq!(*count, 2);
            assert!(recorded < expected, "{recorded} vs {expected}");
        }
        other => panic!("expected ShardIncomplete, got {other}"),
    }
    // The error names the exact command that repairs the shard.
    let text = err.to_string();
    assert!(text.contains("--shard 2/2"), "{text}");
    assert!(text.contains("--resume"), "{text}");
    assert!(!out.exists());

    // Resume the killed shard, then the merge goes through.
    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &CampaignOptions {
            journal: Some(b.0.clone()),
            resume: true,
            budget: RunBudget::UNLIMITED,
            shard: Some(spec(2, 2)),
            ..CampaignOptions::default()
        },
        || false,
        CatBatch::new,
    )
    .expect("resume killed shard");
    let out = TempFile(temp_path("repaired-merged"));
    let report = merge_shards(&[a.0.clone(), b.0.clone()], &out.0).expect("merge after resume");
    assert_eq!(report.trials, SEEDS.len());
}

#[test]
fn merge_tolerates_and_reports_a_torn_shard_tail() {
    // A torn trailing *duplicate* of the final record: the shard is
    // still complete after truncation, so the merge succeeds and the
    // damage is reported, never silently dropped.
    let shards = run_all_shards(2, "torn");
    let text = fs::read_to_string(&shards[1].0).expect("shard 2 text");
    let last = text.lines().last().expect("has records").to_string();
    let torn = format!("{text}{}", &last[..last.len() / 2]);
    fs::write(&shards[1].0, torn).expect("tear shard 2");

    let out = TempFile(temp_path("torn-merged"));
    let report = merge_shards(&paths(&shards), &out.0).expect("merge over torn tail");
    assert_eq!(report.torn_tails, vec![2], "the torn shard is reported");
    assert_eq!(report.trials, SEEDS.len());

    // The merged bytes still match an undamaged merge.
    let clean = run_all_shards(2, "torn-ref");
    let out2 = TempFile(temp_path("torn-ref-merged"));
    merge_shards(&paths(&clean), &out2.0).expect("clean merge");
    assert_eq!(fs::read(&out.0).unwrap(), fs::read(&out2.0).unwrap());
}

#[test]
fn shard_resume_rejects_a_journal_from_a_different_shard() {
    let a = TempFile(temp_path("cross-a"));
    run_shard(&a.0, spec(1, 2), &SEEDS, &config());
    // Resuming shard 2 against shard 1's journal must refuse.
    let err = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &CampaignOptions {
            journal: Some(a.0.clone()),
            resume: true,
            budget: RunBudget::UNLIMITED,
            shard: Some(spec(2, 2)),
            ..CampaignOptions::default()
        },
        || false,
        CatBatch::new,
    )
    .expect_err("wrong shard must be rejected");
    let text = err.to_string();
    assert!(text.contains("shard"), "{text}");
}
