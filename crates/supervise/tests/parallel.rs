//! Parallel-execution determinism tests: for any `--jobs` value, a
//! campaign must produce `TrialStats`, aggregates, and **journal bytes**
//! identical to serial execution — including campaigns with panicking
//! schedulers (quarantine order) and campaigns interrupted mid-flight
//! (the group-committed journal must still be a resumable, contiguous
//! prefix of the serial journal).

use catbatch::CatBatch;
use rigid_dag::gen::{self, TaskSampler};
use rigid_dag::{Instance, ReleasedTask, TaskId};
use rigid_faults::FaultConfig;
use rigid_sim::{FailureResponse, OnlineScheduler, RunBudget};
use rigid_supervise::{run_campaign, CampaignOptions, CampaignOutcome};
use rigid_time::Time;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "rigid-parallel-{}-{}-{tag}.jsonl",
        std::process::id(),
        n
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn options(journal: Option<PathBuf>, resume: bool, jobs: usize) -> CampaignOptions {
    CampaignOptions {
        journal,
        resume,
        jobs,
        budget: RunBudget::UNLIMITED,
        ..CampaignOptions::default()
    }
}

fn journaled(
    instance: &Instance,
    config: &FaultConfig,
    seeds: &[u64],
    path: &Path,
    jobs: usize,
) -> CampaignOutcome {
    run_campaign(
        instance,
        config,
        seeds,
        &options(Some(path.to_path_buf()), false, jobs),
        || false,
        CatBatch::new,
    )
    .expect("journaled campaign")
}

/// A randomized mini-matrix standing in for a property test: several
/// generated instances × fault configs, each checked for byte-level
/// serial/parallel equivalence across worker counts.
#[test]
fn random_campaigns_are_byte_identical_for_jobs_1_2_8() {
    let sampler = TaskSampler::default_mix();
    let cases: Vec<(Instance, FaultConfig)> = vec![
        (
            gen::layered(31, 6, 8, &sampler, 16),
            FaultConfig::fail_stop(350, 3),
        ),
        (
            gen::erdos_dag(37, 50, 0.08, &sampler, 8),
            FaultConfig {
                fail_permille: 200,
                max_failures_per_task: 2,
                straggle_permille: 300,
                straggle_factor_permille: (1250, 2000),
                dips: Vec::new(),
            },
        ),
        (
            gen::chains(41, 10, 5, &sampler, 12),
            FaultConfig::fail_stop(600, 2),
        ),
    ];
    // Duplicate seeds on purpose: the parallel planner dedupes them into
    // replays and must still match the serial loop's accounting.
    let seeds: Vec<u64> = (100..130).chain([105, 100, 117]).collect();

    for (case, (instance, config)) in cases.iter().enumerate() {
        let serial_journal = TempFile(temp_path(&format!("serial-{case}")));
        let serial = journaled(instance, config, &seeds, &serial_journal.0, 1);
        let serial_bytes = fs::read(&serial_journal.0).expect("serial journal");
        assert_eq!(serial.executed, 30, "case {case}: 30 distinct seeds");
        assert_eq!(serial.replayed, 3, "case {case}: 3 duplicate seeds");

        for jobs in [2, 8] {
            let journal = TempFile(temp_path(&format!("jobs{jobs}-{case}")));
            let parallel = journaled(instance, config, &seeds, &journal.0, jobs);
            assert_eq!(
                parallel.stats, serial.stats,
                "case {case}, jobs {jobs}: TrialStats diverged from serial"
            );
            assert_eq!(parallel.executed, serial.executed, "case {case}, jobs {jobs}");
            assert_eq!(parallel.replayed, serial.replayed, "case {case}, jobs {jobs}");
            let bytes = fs::read(&journal.0).expect("parallel journal");
            assert_eq!(
                bytes, serial_bytes,
                "case {case}, jobs {jobs}: journal bytes diverged from serial"
            );
        }
    }
}

/// Wraps CatBatch and pulls the pin on the second fault of a trial.
/// Whether a trial panics depends only on the injector's seeded fault
/// schedule, so the set of quarantined seeds is a deterministic function
/// of the campaign — which the parallel path must reproduce exactly.
struct Grenade {
    inner: CatBatch,
    failures: u32,
}

impl Grenade {
    fn new() -> Self {
        Grenade { inner: CatBatch::new().with_retry_budget(5), failures: 0 }
    }
}

impl OnlineScheduler for Grenade {
    fn name(&self) -> &'static str {
        "grenade"
    }
    fn on_release(&mut self, task: &ReleasedTask, now: Time) {
        self.inner.on_release(task, now);
    }
    fn on_complete(&mut self, task: TaskId, now: Time) {
        self.inner.on_complete(task, now);
    }
    fn decide(&mut self, now: Time, free_procs: u32) -> Vec<TaskId> {
        self.inner.decide(now, free_procs)
    }
    fn on_failure(&mut self, task: TaskId, now: Time) -> FailureResponse {
        self.failures += 1;
        if self.failures >= 8 {
            panic!("grenade: too many faults");
        }
        self.inner.on_failure(task, now)
    }
}

#[test]
fn panicking_scheduler_quarantines_identically_under_parallelism() {
    let sampler = TaskSampler::default_mix();
    let instance = gen::layered(53, 5, 6, &sampler, 8);
    let config = FaultConfig::fail_stop(200, 9);
    let seeds: Vec<u64> = (500..540).collect();

    let serial_journal = TempFile(temp_path("grenade-serial"));
    let serial = run_campaign(
        &instance,
        &config,
        &seeds,
        &options(Some(serial_journal.0.clone()), false, 1),
        || false,
        Grenade::new,
    )
    .expect("serial grenade campaign");
    let serial_bytes = fs::read(&serial_journal.0).expect("serial journal");

    let panicked: Vec<u64> = serial
        .stats
        .trials
        .iter()
        .filter(|t| t.outcome.is_err())
        .map(|t| t.seed)
        .collect();
    let completed = serial.stats.trials.len() - panicked.len();
    assert!(
        !panicked.is_empty() && completed > 0,
        "the grenade campaign must mix panicked ({}) and completed ({}) trials \
         for the quarantine comparison to mean anything",
        panicked.len(),
        completed
    );

    for jobs in [2, 8] {
        let journal = TempFile(temp_path(&format!("grenade-jobs{jobs}")));
        let parallel = run_campaign(
            &instance,
            &config,
            &seeds,
            &options(Some(journal.0.clone()), false, jobs),
            || false,
            Grenade::new,
        )
        .expect("parallel grenade campaign");
        assert_eq!(
            parallel.stats, serial.stats,
            "jobs {jobs}: panicked-trial stats diverged from serial"
        );
        let bytes = fs::read(&journal.0).expect("parallel journal");
        assert_eq!(bytes, serial_bytes, "jobs {jobs}: journal bytes diverged");
    }
}

#[test]
fn interrupted_parallel_campaign_flushes_a_resumable_prefix() {
    let sampler = TaskSampler::default_mix();
    let instance = gen::layered(61, 5, 6, &sampler, 8);
    let config = FaultConfig::fail_stop(300, 3);
    let seeds: Vec<u64> = (900..940).collect();

    // Ground truth: complete serial journaled run.
    let full_journal = TempFile(temp_path("interrupt-full"));
    let full = journaled(&instance, &config, &seeds, &full_journal.0, 1);
    let full_bytes = fs::read(&full_journal.0).expect("full journal");

    // Interrupt a 4-way parallel run early, as SIGINT would.
    let journal = TempFile(temp_path("interrupt-partial"));
    let polls = AtomicUsize::new(0);
    let partial = run_campaign(
        &instance,
        &config,
        &seeds,
        &options(Some(journal.0.clone()), false, 4),
        || polls.fetch_add(1, Ordering::SeqCst) >= 12,
        CatBatch::new,
    )
    .expect("interrupted parallel campaign");
    assert!(partial.interrupted, "the stop closure must interrupt the fan-out");
    assert!(
        partial.executed < seeds.len(),
        "an interrupted campaign must not have finished everything"
    );

    // Flush-on-interrupt: the journal is a contiguous, in-order prefix
    // of the serial journal — every record the outcome counted, durable,
    // nothing torn, nothing out of order.
    let partial_bytes = fs::read(&journal.0).expect("partial journal");
    let prefix: Vec<u8> = full_bytes
        .split_inclusive(|&b| b == b'\n')
        .take(1 + partial.executed)
        .flatten()
        .copied()
        .collect();
    assert_eq!(
        partial_bytes, prefix,
        "interrupted parallel journal must be the serial journal's prefix"
    );

    // And it resumes to the exact uninterrupted result, bytes included.
    let resumed = run_campaign(
        &instance,
        &config,
        &seeds,
        &options(Some(journal.0.clone()), true, 4),
        || false,
        CatBatch::new,
    )
    .expect("resume after parallel interrupt");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.replayed, partial.executed);
    assert_eq!(resumed.executed, seeds.len() - partial.executed);
    assert_eq!(resumed.stats, full.stats);
    let resumed_bytes = fs::read(&journal.0).expect("resumed journal");
    assert_eq!(resumed_bytes, full_bytes, "resumed journal must match serial bytes");
}
