//! Kill-and-resume integration tests: a campaign interrupted (by a stop
//! closure or by truncating its journal mid-flight, simulating a crash)
//! and then resumed must reproduce the uninterrupted aggregates
//! byte-for-byte, and a complete journal must resume as a no-op.

use catbatch::CatBatch;
use rigid_dag::paper::figure3;
use rigid_faults::FaultConfig;
use rigid_sim::RunBudget;
use rigid_supervise::{run_campaign, CampaignError, CampaignOptions, JournalError};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const SEEDS: [u64; 6] = [11, 22, 33, 44, 55, 66];

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "rigid-resume-{}-{}-{tag}.jsonl",
        std::process::id(),
        n
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

fn config() -> FaultConfig {
    FaultConfig::fail_stop(250, 2)
}

fn options(journal: Option<PathBuf>, resume: bool) -> CampaignOptions {
    CampaignOptions {
        journal,
        resume,
        budget: RunBudget::UNLIMITED,
        ..CampaignOptions::default()
    }
}

/// The ground truth: one uninterrupted, unjournaled run.
fn uninterrupted() -> rigid_faults::CampaignStats {
    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(None, false),
        || false,
        CatBatch::new,
    )
    .expect("uninterrupted campaign")
    .stats
}

#[test]
fn journal_crash_mid_campaign_resumes_to_identical_aggregates() {
    let baseline = uninterrupted();
    let journal = TempFile(temp_path("crash"));

    // Full journaled run, then "crash" it by truncating the journal to
    // the header plus the first three trial records.
    let full = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), false),
        || false,
        CatBatch::new,
    )
    .expect("journaled campaign");
    assert_eq!(full.stats, baseline, "journaling must not change results");
    assert_eq!(full.executed, SEEDS.len());
    assert_eq!(full.replayed, 0);

    let text = fs::read_to_string(&journal.0).expect("read journal");
    let kept: String = text.split_inclusive('\n').take(1 + 3).collect();
    fs::write(&journal.0, &kept).expect("truncate journal");

    let resumed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect("resumed campaign");
    assert_eq!(resumed.replayed, 3, "3 journaled trials replay");
    assert_eq!(resumed.executed, 3, "3 lost trials re-execute");
    assert!(!resumed.interrupted);
    assert_eq!(
        resumed.stats, baseline,
        "kill-and-resume must reproduce the uninterrupted aggregates"
    );
}

#[test]
fn complete_journal_resume_is_a_no_op() {
    let baseline = uninterrupted();
    let journal = TempFile(temp_path("noop"));

    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), false),
        || false,
        CatBatch::new,
    )
    .expect("journaled campaign");
    let before = fs::read_to_string(&journal.0).expect("read journal");

    let resumed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect("no-op resume");
    assert_eq!(resumed.executed, 0, "a finished journal re-executes nothing");
    assert_eq!(resumed.replayed, SEEDS.len());
    assert_eq!(resumed.stats, baseline);
    let after = fs::read_to_string(&journal.0).expect("read journal");
    assert_eq!(before, after, "a no-op resume appends nothing");
}

#[test]
fn torn_trailing_line_is_discarded_and_reexecuted() {
    let baseline = uninterrupted();
    let journal = TempFile(temp_path("torn"));

    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), false),
        || false,
        CatBatch::new,
    )
    .expect("journaled campaign");

    // Tear the final record mid-line, as a crash during write would.
    let text = fs::read_to_string(&journal.0).expect("read journal");
    let trimmed = text.trim_end_matches('\n');
    let torn = &trimmed[..trimmed.len() - trimmed.len().min(17)];
    fs::write(&journal.0, torn).expect("tear journal");

    let resumed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect("resume over torn tail");
    assert!(resumed.torn_tail, "the torn line must be reported");
    assert_eq!(resumed.replayed, SEEDS.len() - 1);
    assert_eq!(resumed.executed, 1, "only the torn trial re-executes");
    assert_eq!(resumed.stats, baseline);
}

#[test]
fn stop_closure_interrupts_and_resume_completes() {
    let baseline = uninterrupted();
    let journal = TempFile(temp_path("stop"));

    // Stop after four trials, as a SIGINT between trials would.
    let polls = AtomicUsize::new(0);
    let partial = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), false),
        || polls.fetch_add(1, Ordering::SeqCst) >= 4,
        CatBatch::new,
    )
    .expect("interrupted campaign");
    assert!(partial.interrupted);
    assert_eq!(partial.executed, 4);
    assert_eq!(partial.stats.trials.len(), 4, "partial stats cover 4 seeds");
    assert_eq!(
        partial.stats.trials[..],
        baseline.trials[..4],
        "partial aggregates match the uninterrupted prefix"
    );

    let resumed = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect("resume after interrupt");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.replayed, 4);
    assert_eq!(resumed.executed, 2);
    assert_eq!(resumed.stats, baseline);
}

#[test]
fn resume_rejects_a_journal_for_a_different_scenario() {
    let journal = TempFile(temp_path("mismatch"));
    run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), false),
        || false,
        CatBatch::new,
    )
    .expect("journaled campaign");

    // Same journal, different fault config: must refuse, not mix.
    let err = run_campaign(
        &figure3(),
        &FaultConfig::fail_stop(900, 5),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect_err("fingerprint mismatch must be rejected");
    assert!(matches!(
        err,
        CampaignError::Journal(JournalError::FingerprintMismatch { .. })
    ));
}

#[test]
fn resume_into_a_missing_journal_starts_fresh() {
    let baseline = uninterrupted();
    let journal = TempFile(temp_path("fresh"));
    let outcome = run_campaign(
        &figure3(),
        &config(),
        &SEEDS,
        &options(Some(journal.0.clone()), true),
        || false,
        CatBatch::new,
    )
    .expect("resume with no journal yet");
    assert_eq!(outcome.executed, SEEDS.len());
    assert_eq!(outcome.replayed, 0);
    assert_eq!(outcome.stats, baseline);
    assert!(journal.0.exists(), "the journal is created for next time");
}
