//! Fixed-point dyadic numbers `mantissa · 2^exp`: the fast path for
//! [`Time`](crate::Time) arithmetic.
//!
//! The paper's category machinery (Definition 2) lives entirely on dyadic
//! grid points `λ·2^χ`, and every workload generator snaps lengths onto the
//! `2^-20` grid — so in practice almost every instant the engine touches is
//! dyadic. A dyadic add is one shift and one integer add; the equivalent
//! reduced-rational add costs a gcd. [`Dyadic`] packages that fast case with
//! hard representability bounds so that every `Dyadic` converts *exactly*
//! to a [`Rational`] (and back), letting `Time` fall back to exact rational
//! arithmetic the moment a value leaves the representable dyadic range.
//!
//! # Canonical form
//!
//! Every `Dyadic` is normalized: the mantissa is odd, or the value is zero
//! with `mantissa == 0 && exp == 0`. Canonical form makes derived
//! `Eq`/`Hash` agree with numeric equality and keeps the mantissa maximally
//! small, which maximizes headroom before overflow.
//!
//! # Representable range
//!
//! A canonical `Dyadic` requires `exp >= -126` and, for positive
//! exponents, `bitlen(|mantissa|) + exp <= 127`. Both bounds exist so the
//! exact [`Rational`] image (`mantissa << exp` over `1`, or `mantissa` over
//! `1 << -exp`) always fits in `i128` without reduction.

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;

/// The most negative representable exponent: `2^-126` is the finest grid,
/// chosen so the rational image's denominator `1 << 126` fits in `i128`.
pub const MIN_EXPONENT: i32 = -126;

/// A fixed-point dyadic number `mantissa · 2^exp` in canonical form
/// (odd mantissa, or the canonical zero).
///
/// Construct via [`Dyadic::try_new`] (which canonicalizes and range-checks)
/// or convert from a [`Rational`] with [`Dyadic::try_from_rational`]. All
/// arithmetic is checked: `None` means the exact result leaves the
/// representable dyadic range and the caller must fall back to rationals.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dyadic {
    mantissa: i64,
    exp: i32,
}

impl Dyadic {
    /// The canonical zero.
    pub const ZERO: Dyadic = Dyadic {
        mantissa: 0,
        exp: 0,
    };
    /// The value one.
    pub const ONE: Dyadic = Dyadic {
        mantissa: 1,
        exp: 0,
    };

    /// Canonicalizes `m · 2^e` with an `i128` mantissa, returning `None`
    /// when the odd-mantissa form does not fit the representable range.
    const fn from_parts_i128(m: i128, e: i32) -> Option<Dyadic> {
        if m == 0 {
            return Some(Dyadic::ZERO);
        }
        let tz = m.trailing_zeros() as i32;
        // Odd part always fits after the shift check below; `>> tz` on
        // i128::MIN (tz = 127) yields -1, so no wraparound case exists.
        let m = m >> tz;
        let e = match e.checked_add(tz) {
            Some(e) => e,
            None => return Some(Dyadic::ZERO), // unreachable: |tz| <= 127
        };
        if m > i64::MAX as i128 || m < i64::MIN as i128 {
            return None;
        }
        if e < MIN_EXPONENT {
            return None;
        }
        if e > 0 {
            // bitlen(|m|) + e <= 127 keeps `m << e` inside i128.
            let bitlen = 128 - m.unsigned_abs().leading_zeros() as i32;
            if bitlen + e > 127 {
                return None;
            }
        }
        Some(Dyadic {
            mantissa: m as i64,
            exp: e,
        })
    }

    /// Creates the canonical dyadic equal to `mantissa · 2^exp`, or `None`
    /// when the value leaves the representable range (see module docs).
    pub const fn try_new(mantissa: i64, exp: i32) -> Option<Dyadic> {
        Self::from_parts_i128(mantissa as i128, exp)
    }

    /// Exact conversion from a reduced rational: `Some` iff the
    /// denominator is a power of two within the representable range.
    pub const fn try_from_rational(r: Rational) -> Option<Dyadic> {
        let den = r.denom();
        // den > 0 always; a power of two has exactly one set bit.
        if den.count_ones() != 1 {
            return None;
        }
        Self::from_parts_i128(r.numer(), -(den.trailing_zeros() as i32))
    }

    /// The odd (or zero) mantissa.
    #[must_use]
    pub const fn mantissa(&self) -> i64 {
        self.mantissa
    }

    /// The exponent of the canonical form.
    #[must_use]
    pub const fn exponent(&self) -> i32 {
        self.exp
    }

    /// Returns `true` if this value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// Returns `true` if this value is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        self.mantissa > 0
    }

    /// Returns `true` if this value is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.mantissa < 0
    }

    /// Exact conversion to the reduced [`Rational`] image. Never loses
    /// precision: the representability bounds guarantee the numerator and
    /// denominator fit `i128`.
    #[must_use]
    pub const fn to_rational(&self) -> Rational {
        if self.exp >= 0 {
            Rational::from_reduced_parts((self.mantissa as i128) << self.exp, 1)
        } else {
            Rational::from_reduced_parts(self.mantissa as i128, 1i128 << -self.exp)
        }
    }

    /// Exact negation. Never overflows: a canonical mantissa is odd or
    /// zero, so it is never `i64::MIN`.
    #[must_use]
    pub const fn neg(self) -> Dyadic {
        Dyadic {
            mantissa: -self.mantissa,
            exp: self.exp,
        }
    }

    /// Checked addition: `None` when the exact sum leaves the
    /// representable range (fall back to rational arithmetic).
    pub const fn checked_add(self, rhs: Dyadic) -> Option<Dyadic> {
        if self.mantissa == 0 {
            return Some(rhs);
        }
        if rhs.mantissa == 0 {
            return Some(self);
        }
        let (hi, lo) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let d = (hi.exp - lo.exp) as u32;
        if d > 63 {
            // The sum is odd (lo's mantissa is odd) with magnitude at
            // least 2^64 - 2^63 > i64::MAX: provably unrepresentable.
            return None;
        }
        // |hi.mantissa| < 2^63 shifted by <= 63 stays below 2^126; the
        // i128 sum cannot overflow.
        let sum = ((hi.mantissa as i128) << d) + lo.mantissa as i128;
        Self::from_parts_i128(sum, lo.exp)
    }

    /// Checked subtraction: `self + (-rhs)`.
    pub const fn checked_sub(self, rhs: Dyadic) -> Option<Dyadic> {
        self.checked_add(rhs.neg())
    }

    /// Checked multiplication by a plain integer.
    pub const fn checked_mul_int(self, k: i64) -> Option<Dyadic> {
        // i64 × i64 always fits i128.
        Self::from_parts_i128(self.mantissa as i128 * k as i128, self.exp)
    }

    /// Checked division by `2^shift` (`shift >= 0`): an exponent
    /// adjustment, `None` when it would pass `MIN_EXPONENT`.
    pub const fn checked_div_pow2(self, shift: u32) -> Option<Dyadic> {
        if self.mantissa == 0 {
            return Some(Dyadic::ZERO);
        }
        let e = self.exp - shift as i32;
        if e < MIN_EXPONENT {
            return None;
        }
        Some(Dyadic {
            mantissa: self.mantissa,
            exp: e,
        })
    }

    /// The magnitude exponent: the unique `k` with
    /// `2^(k-1) <= |value| < 2^k` (meaningless for zero).
    pub(crate) const fn magnitude(&self) -> i32 {
        let bitlen = 64 - self.mantissa.unsigned_abs().leading_zeros() as i32;
        bitlen + self.exp
    }

    /// Mantissa bits the radix key can normalize (see [`Self::radix_key`]).
    pub(crate) const KEY_MANTISSA_BITS: i32 = 57;

    /// A strictly monotone `u64` key over the non-negative dyadics whose
    /// canonical mantissa fits `KEY_MANTISSA_BITS` (57) bits.
    ///
    /// The encoding is float-like: the high 8 bits hold the biased
    /// magnitude exponent (`magnitude() + 126`, in `1..=253`; zero maps
    /// to key `0`), the low 56 bits hold the mantissa normalized to 57
    /// bits with its always-set top bit dropped. For any two values `a`,
    /// `b` with keys `ka`, `kb`: `a < b ⟺ ka < kb` and `a == b ⟺
    /// ka == kb` — so sorting by key is sorting by value, which is what
    /// lets a radix calendar queue order events with one integer compare.
    ///
    /// Returns `None` for negative values and for mantissas wider than
    /// 57 bits (callers fall back to exact rational ordering).
    #[must_use]
    pub const fn radix_key(&self) -> Option<u64> {
        if self.mantissa == 0 {
            return Some(0);
        }
        if self.mantissa < 0 {
            return None;
        }
        let m = self.mantissa as u64;
        let bitlen = 64 - m.leading_zeros() as i32;
        if bitlen > Self::KEY_MANTISSA_BITS {
            return None;
        }
        // magnitude() is in [-125, 127] by the representability bounds,
        // so the biased exponent field is in [1, 253] and fits 8 bits.
        let field = (self.magnitude() + 126) as u64;
        let frac = m << (Self::KEY_MANTISSA_BITS - bitlen);
        let frac_low = frac & ((1u64 << (Self::KEY_MANTISSA_BITS - 1)) - 1);
        Some((field << (Self::KEY_MANTISSA_BITS - 1)) | frac_low)
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        // Signs decide first, without any arithmetic.
        let (ls, rs) = (self.mantissa.signum(), other.mantissa.signum());
        if ls != rs {
            return ls.cmp(&rs);
        }
        if ls == 0 {
            return Ordering::Equal;
        }
        // Same sign: compare magnitude exponents, flipped for negatives.
        let (lm, rm) = (self.magnitude(), other.magnitude());
        if lm != rm {
            return if ls > 0 { lm.cmp(&rm) } else { rm.cmp(&lm) };
        }
        // Equal magnitudes force |exp difference| <= 63 (bit lengths are
        // in 1..=64), so aligning in i128 cannot overflow.
        let d = self.exp - other.exp;
        let (lhs, rhs) = if d >= 0 {
            ((self.mantissa as i128) << d, other.mantissa as i128)
        } else {
            (self.mantissa as i128, (other.mantissa as i128) << -d)
        };
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*2^{}", self.mantissa, self.exp)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_rational())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: i64, e: i32) -> Dyadic {
        Dyadic::try_new(m, e).expect("in range")
    }

    #[test]
    fn canonicalization() {
        assert_eq!(d(6, -1), d(3, 0));
        assert_eq!(d(8, 0), d(1, 3));
        assert_eq!(d(0, 17).mantissa(), 0);
        assert_eq!(d(0, 17).exponent(), 0);
        assert_eq!(d(-6, -1), d(-3, 0));
        assert_eq!(d(i64::MIN, 0), d(-1, 63));
    }

    #[test]
    fn range_bounds() {
        assert!(Dyadic::try_new(1, -126).is_some());
        assert!(Dyadic::try_new(1, -127).is_none());
        assert!(Dyadic::try_new(1, 126).is_some());
        assert!(Dyadic::try_new(1, 127).is_none());
        assert!(Dyadic::try_new(3, 125).is_some()); // bitlen 2 + 125 = 127
        assert!(Dyadic::try_new(3, 126).is_none());
        assert!(Dyadic::try_new(i64::MAX, 65).is_none()); // bitlen 63 + 65 > 127
        assert!(Dyadic::try_new(i64::MAX, 64).is_some()); // bitlen 63 + 64 = 127
    }

    #[test]
    fn rational_roundtrip() {
        for (m, e) in [(3, -5), (-7, 2), (1, -126), (1, 126), (0, 0), (5, 60)] {
            let v = d(m, e);
            assert_eq!(Dyadic::try_from_rational(v.to_rational()), Some(v));
        }
        assert!(Dyadic::try_from_rational(Rational::new(1, 3)).is_none());
        assert_eq!(
            Dyadic::try_from_rational(Rational::new(6, 4)),
            Some(d(3, -1))
        );
    }

    #[test]
    fn addition() {
        assert_eq!(d(1, -1).checked_add(d(1, -1)), Some(Dyadic::ONE));
        assert_eq!(d(3, 0).checked_add(d(1, -2)), Some(d(13, -2)));
        assert_eq!(d(5, 0).checked_add(d(-5, 0)), Some(Dyadic::ZERO));
        // Exponent gap > 63: provably unrepresentable.
        assert_eq!(d(1, 70).checked_add(d(1, 0)), None);
        // Gap exactly 63 fits when the signs oppose: 2^63 - 1 = i64::MAX.
        assert_eq!(d(1, 63).checked_add(d(-1, 0)), Some(d(i64::MAX, 0)));
        // Same-sign at gap 63 overflows the mantissa.
        assert_eq!(d(1, 63).checked_add(d(1, 0)), None);
        // Mantissa overflow within a small gap.
        assert_eq!(d(i64::MAX, 0).checked_add(d(i64::MAX - 1, 0)), None);
        // Cancellation re-canonicalizes.
        assert_eq!(d(5, 0).checked_add(d(-1, 0)), Some(d(1, 2)));
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(d(7, 0).checked_sub(d(3, 0)), Some(d(1, 2)));
        assert_eq!(d(3, 0).neg(), d(-3, 0));
        assert_eq!(Dyadic::ZERO.neg(), Dyadic::ZERO);
        assert_eq!(d(-1, 63).neg(), d(1, 63));
    }

    #[test]
    fn mul_int_and_div_pow2() {
        assert_eq!(d(3, -2).checked_mul_int(4), Some(d(3, 0)));
        assert_eq!(d(3, -2).checked_mul_int(0), Some(Dyadic::ZERO));
        assert_eq!(d(1, 126).checked_mul_int(2), None);
        assert_eq!(d(3, 0).checked_div_pow2(2), Some(d(3, -2)));
        assert_eq!(d(1, -126).checked_div_pow2(1), None);
        assert_eq!(Dyadic::ZERO.checked_div_pow2(200), Some(Dyadic::ZERO));
    }

    #[test]
    fn radix_key_is_monotone_and_injective() {
        // Every pair of keyable values must order by key exactly as by
        // value, and distinct values must get distinct keys.
        let samples = [
            Dyadic::ZERO,
            d(1, -126),
            d(3, -126),
            d(1, -20),
            d(1, 0),
            d(3, -2),
            d(5, -3),
            d(7, 0),
            d(13, -2),
            d(1, 56),
            d((1 << 56) | 1, -20), // 57-bit mantissa: still keyable
            d(1, 70),
            d(1, 127 - 57),
        ];
        for a in samples {
            for b in samples {
                let (ka, kb) = (a.radix_key().unwrap(), b.radix_key().unwrap());
                assert_eq!(ka.cmp(&kb), a.cmp(&b), "key order for {a:?} vs {b:?}");
                assert_eq!(ka == kb, a == b, "key injectivity for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn radix_key_coverage_bounds() {
        assert_eq!(Dyadic::ZERO.radix_key(), Some(0));
        // Negative values are out of coverage.
        assert_eq!(d(-1, 0).radix_key(), None);
        assert_eq!(d(-3, -40).radix_key(), None);
        // 57-bit mantissas are in, 58-bit mantissas out.
        assert!(d((1 << 56) | 1, 0).radix_key().is_some());
        assert_eq!(d((1 << 57) | 1, 0).radix_key(), None);
        // The extreme exponents stay keyable (mantissa 1 is one bit).
        assert!(d(1, -126).radix_key().is_some());
        assert!(d(1, 126).radix_key().is_some());
        // Zero keys strictly below every positive value.
        assert!(d(1, -126).radix_key().unwrap() > 0);
    }

    #[test]
    fn ordering_matches_rational() {
        let samples = [
            d(0, 0),
            d(1, -126),
            d(-1, -126),
            d(1, 126),
            d(-1, 126),
            d(3, -2),
            d(5, -3),
            d(-3, -2),
            d(i64::MAX, 10),
            d(i64::MAX, 9),
            d(1, 63),
            d(-1, 63),
            d(7, 0),
            d(13, -2),
        ];
        for a in samples {
            for b in samples {
                assert_eq!(
                    a.cmp(&b),
                    a.to_rational().cmp(&b.to_rational()),
                    "cmp({a:?}, {b:?})"
                );
            }
        }
    }
}
