//! # rigid-time — exact time arithmetic for rigid task scheduling
//!
//! This crate is the numeric foundation of the `catbatch` workspace, a
//! from-scratch reproduction of *“A New Algorithm for Online Scheduling of
//! Rigid Task Graphs with Near-Optimal Competitive Ratio”* (SPAA 2025).
//!
//! The paper's category machinery (its Definition 2) classifies each task by
//! the largest power of two `2^χ` such that a multiple `λ·2^χ` lies
//! **strictly** inside the task's criticality interval `(s∞, f∞)`. Deciding
//! strict inequalities against dyadic grid points is exactly the situation
//! where floating point fails — criticalities routinely land *on* grid
//! points (every value in the paper's Figure 3 does). This crate therefore
//! provides:
//!
//! * [`Rational`] — reduced `i128` rationals with checked arithmetic;
//! * [`Dyadic`] — fixed-point `mantissa·2^exp` values, the fast path;
//! * [`Time`] — the workspace-wide instant/duration scalar (dyadic while
//!   values stay on the grid, exact rational otherwise);
//! * [`Pow2`] — exact `2^χ` values and dyadic grid searches.
//!
//! See `docs/time.md` in the repository root for the representation and
//! fallback rules.
//!
//! ## Example
//!
//! ```
//! use rigid_time::{Time, Pow2};
//!
//! // The criticality interval of task H in the paper's Figure 3:
//! let s_inf = Time::from_millis(4, 800); // 4.8
//! let f_inf = Time::from_int(6);
//!
//! // The largest χ with a multiple of 2^χ strictly inside (4.8, 6) is 0:
//! // λ·2^0 = 5 ∈ (4.8, 6). (That makes H's category ζ = 5.)
//! let chi = Pow2::new(0);
//! let lambda = chi.next_multiple_after(s_inf);
//! assert_eq!(lambda, 5);
//! assert!(chi.grid_point(lambda as i64) < f_inf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyadic;
mod parse;
mod pow2;
mod rational;
mod time;

pub use dyadic::{Dyadic, MIN_EXPONENT};
pub use parse::ParseTimeError;
pub use pow2::Pow2;
pub use rational::{OverflowError, Rational};
pub use time::{SnapError, Time};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rational() -> impl Strategy<Value = Rational> {
        (-10_000i128..10_000, 1i128..1_000).prop_map(|(n, d)| Rational::new(n, d))
    }

    fn arb_pos_time() -> impl Strategy<Value = Time> {
        (1i64..100_000, 1i64..1_000).prop_map(|(n, d)| Time::from_ratio(n, d))
    }

    proptest! {
        #[test]
        fn add_commutative(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn add_associative(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn mul_distributes(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_inverts_add(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn reduction_invariant(a in arb_rational()) {
            // gcd(num, den) == 1 and den > 0 always hold.
            let g = {
                let (mut x, mut y) = (a.numer().unsigned_abs(), a.denom().unsigned_abs());
                while y != 0 { let r = x % y; x = y; y = r; }
                x
            };
            prop_assert!(a.denom() > 0);
            prop_assert!(a.is_zero() || g == 1);
        }

        #[test]
        fn ordering_agrees_with_f64(a in arb_rational(), b in arb_rational()) {
            // When the f64 images differ clearly, exact ordering must agree.
            let (fa, fb) = (a.to_f64(), b.to_f64());
            if (fa - fb).abs() > 1e-6 {
                prop_assert_eq!(a < b, fa < fb);
            }
        }

        #[test]
        fn floor_ceil_bracket(a in arb_rational()) {
            let f = a.floor();
            let c = a.ceil();
            prop_assert!(Rational::new(f, 1) <= a);
            prop_assert!(a <= Rational::new(c, 1));
            prop_assert!(c - f <= 1);
        }

        #[test]
        fn largest_below_is_maximal(t in arb_pos_time()) {
            let p = Pow2::largest_below(t);
            prop_assert!(p.as_time() < t);
            prop_assert!(p.double().as_time() >= t);
        }

        #[test]
        fn next_multiple_is_strictly_after(t in arb_pos_time(), chi in -20i32..20) {
            let p = Pow2::new(chi);
            let lam = p.next_multiple_after(t);
            prop_assert!(p.grid_point(lam as i64) > t);
            prop_assert!(p.grid_point((lam - 1) as i64) <= t);
        }

        #[test]
        fn dyadic_rational_roundtrip(m in -1_000_000i64..1_000_000, e in -60i32..40) {
            // Every in-range dyadic converts to a rational and back losslessly.
            let d = Dyadic::try_new(m, e).expect("well inside the range");
            let r = d.to_rational();
            prop_assert_eq!(Dyadic::try_from_rational(r), Some(d));
            // And the Time wrapper stores it in the dyadic variant.
            let t = Time::from_rational(r);
            prop_assert_eq!(t.dyadic(), Some(d));
            prop_assert_eq!(t.rational(), r);
        }

        #[test]
        fn dyadic_arithmetic_matches_rational(
            (m1, e1) in (-1_000_000i64..1_000_000, -40i32..40),
            (m2, e2) in (-1_000_000i64..1_000_000, -40i32..40),
            k in -1_000i64..1_000,
        ) {
            let a = Dyadic::try_new(m1, e1).unwrap();
            let b = Dyadic::try_new(m2, e2).unwrap();
            let (ra, rb) = (a.to_rational(), b.to_rational());
            if let Some(s) = a.checked_add(b) {
                prop_assert_eq!(s.to_rational(), ra + rb);
            }
            if let Some(s) = a.checked_sub(b) {
                prop_assert_eq!(s.to_rational(), ra - rb);
            }
            if let Some(p) = a.checked_mul_int(k) {
                prop_assert_eq!(p.to_rational(), ra.checked_mul_int(k as i128).unwrap());
            }
            prop_assert_eq!(a.cmp(&b), ra.cmp(&rb));
        }

        #[test]
        fn overflow_fallback_identical_to_pure_rational(
            m in 1i64..1_000_000, n in 1i64..1_000_000,
        ) {
            // Both operands are dyadic, but the exponent gap (> 63) makes
            // the sum's mantissa overflow i64: the dyadic add declines and
            // the rational fallback must produce the identical value.
            let big = Time::from_dyadic(m, 80);
            let small = Time::from_dyadic(n, -20);
            prop_assert!(big.dyadic().is_some() && small.dyadic().is_some());
            prop_assert!(big.dyadic().unwrap().checked_add(small.dyadic().unwrap()).is_none());
            let fast = big + small;
            let slow = Time::from_rational(
                big.rational().checked_add(&small.rational()).unwrap()
            );
            prop_assert_eq!(fast, slow);
            prop_assert_eq!(fast.rational(), slow.rational());
        }

        #[test]
        fn mixed_variant_arithmetic_commutes(
            (dn, dd) in (-10_000i64..10_000, 0u32..20),
            (rn, rd) in (-10_000i64..10_000, 1i64..1_000),
        ) {
            // One operand on the dyadic grid, one generic rational: results
            // are identical in either order and in either variant pairing.
            let dy = Time::from_ratio(dn, 1i64 << dd);
            let ra = Time::from_ratio(rn, rd);
            prop_assert_eq!(dy + ra, ra + dy);
            prop_assert_eq!(dy - ra, -(ra - dy));
            prop_assert_eq!(
                (dy + ra).rational(),
                dy.rational().checked_add(&ra.rational()).unwrap()
            );
            // Re-entering the grid restores the dyadic variant.
            let back = (dy + ra) - ra;
            prop_assert_eq!(back, dy);
            prop_assert_eq!(back.dyadic().is_some(), dy.dyadic().is_some());
        }

        #[test]
        fn dyadic_key_matches_exact_order(
            (m1, e1) in (0i64..=(1 << 57), -60i32..40),
            (m2, e2) in (0i64..=(1 << 57), -60i32..40),
        ) {
            // Over the key's full coverage (non-negative, mantissa up to
            // 57 bits), key order must equal value order and key equality
            // must equal value equality.
            let a = Time::from_dyadic(m1, e1);
            let b = Time::from_dyadic(m2, e2);
            let (ka, kb) = (a.dyadic_key(), b.dyadic_key());
            // Canonicalization only shrinks the mantissa, so both stay
            // keyable.
            let (ka, kb) = (ka.expect("in coverage"), kb.expect("in coverage"));
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
            prop_assert_eq!(ka == kb, a == b);
        }

        #[test]
        fn mixed_cmp_fast_path_matches_exact(
            (dn, dd) in (-100_000i64..100_000, 0u32..30),
            (rn, rd) in (-100_000i64..100_000, 1i64..100_000),
        ) {
            // The sign/magnitude short-circuit in the Dyadic-vs-Rational
            // comparison must agree with the full rational promotion on
            // arbitrary cross-variant pairs (and be antisymmetric).
            let dy = Time::from_ratio(dn, 1i64 << dd);
            let ra = Time::from_ratio(rn, rd);
            let exact = dy.rational().cmp(&ra.rational());
            prop_assert_eq!(dy.cmp(&ra), exact);
            prop_assert_eq!(ra.cmp(&dy), exact.reverse());
        }

        #[test]
        fn time_display_roundtrips_value(t in arb_pos_time()) {
            // Display must never lose the exact value when it prints a
            // fraction; when it prints a decimal it must be the exact value.
            let s = format!("{t}");
            if let Some((n, d)) = s.split_once('/') {
                let n: i128 = n.parse().unwrap();
                let d: i128 = d.parse().unwrap();
                prop_assert_eq!(Time::from_rational(Rational::new(n, d)), t);
            } else {
                let v: f64 = s.parse().unwrap();
                prop_assert!((v - t.to_f64()).abs() < 1e-9);
            }
        }
    }
}
