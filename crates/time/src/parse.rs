//! Parsing exact time literals.
//!
//! Accepted forms (all parsed exactly, no float rounding):
//!
//! * integers — `6`, `-3`
//! * decimals — `2.8`, `0.125`, `-1.5` (up to 30 fractional digits)
//! * fractions — `34/5`, `-7/2`

use crate::rational::Rational;
use crate::time::Time;
use std::str::FromStr;

/// Error from parsing a time literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError {
    message: String,
}

impl ParseTimeError {
    fn new(message: impl Into<String>) -> Self {
        ParseTimeError {
            message: message.into(),
        }
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseTimeError {}

impl FromStr for Time {
    type Err = ParseTimeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i64 = n
                .trim()
                .parse()
                .map_err(|_| ParseTimeError::new(format!("bad numerator {n:?}")))?;
            let d: i64 = d
                .trim()
                .parse()
                .map_err(|_| ParseTimeError::new(format!("bad denominator {d:?}")))?;
            if d == 0 {
                return Err(ParseTimeError::new("zero denominator"));
            }
            return Ok(Time::from_ratio(n, d));
        }
        if let Some((int_part, frac)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let int_val: i64 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part
                    .parse()
                    .map_err(|_| ParseTimeError::new(format!("bad integer part {int_part:?}")))?
            };
            // 30 fractional digits cover the 2^-20 dyadic grid (20 digits)
            // with headroom while 10^30 still fits in i128.
            if frac.is_empty() || frac.len() > 30 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseTimeError::new(format!("bad fractional part {frac:?}")));
            }
            let scale = 10i128.pow(frac.len() as u32);
            let frac_val: i128 = frac.parse().expect("digits checked");
            let signed_frac = if neg { -frac_val } else { frac_val };
            let num = (int_val as i128)
                .checked_mul(scale)
                .and_then(|v| v.checked_add(signed_frac))
                .ok_or_else(|| ParseTimeError::new(format!("time literal {s:?} out of range")))?;
            return Ok(Time::from_rational(Rational::new(num, scale)));
        }
        let n: i64 = s
            .parse()
            .map_err(|_| ParseTimeError::new(format!("bad time {s:?}")))?;
        Ok(Time::from_int(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!("6".parse::<Time>().unwrap(), Time::from_int(6));
        assert_eq!("2.8".parse::<Time>().unwrap(), Time::from_millis(2, 800));
        assert_eq!("34/5".parse::<Time>().unwrap(), Time::from_millis(6, 800));
        assert_eq!("0.125".parse::<Time>().unwrap(), Time::from_ratio(1, 8));
        assert_eq!("-1.5".parse::<Time>().unwrap(), Time::from_ratio(-3, 2));
        assert_eq!(" 3 ".parse::<Time>().unwrap(), Time::from_int(3));
        assert_eq!(".5".parse::<Time>().unwrap(), Time::from_ratio(1, 2));
    }

    #[test]
    fn rejects_garbage() {
        assert!("abc".parse::<Time>().is_err());
        assert!("1/0".parse::<Time>().is_err());
        assert!("1.x".parse::<Time>().is_err());
        assert!("1.".parse::<Time>().is_err());
        assert!("".parse::<Time>().is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        for t in [
            Time::from_millis(6, 800),
            Time::from_ratio(1, 3),
            Time::from_int(-7),
            Time::from_ratio(95391691, 1 << 20),
        ] {
            let s = format!("{t}");
            assert_eq!(s.parse::<Time>().unwrap(), t, "roundtrip of {s}");
        }
    }
}
