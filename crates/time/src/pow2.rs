//! Exact powers of two with integer (possibly negative) exponents.
//!
//! The category machinery of the paper (Definition 2) works on the dyadic
//! grid: a task's *power level* `χ` is the largest integer such that some
//! multiple `λ·2^χ` lies strictly inside the criticality interval
//! `(s∞, f∞)`. [`Pow2`] represents `2^χ` exactly for any `χ ∈ [-126, 126]`
//! and provides the grid arithmetic needed to locate those multiples.

use crate::rational::Rational;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The exact value `2^exponent`, with `exponent` possibly negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pow2 {
    exponent: i32,
}

/// Exponent range representable inside an `i128` rational.
const MAX_ABS_EXPONENT: i32 = 126;

impl Pow2 {
    /// `2^0 = 1`.
    pub const ONE: Pow2 = Pow2 { exponent: 0 };

    /// Creates `2^exponent`.
    ///
    /// # Panics
    /// Panics if `|exponent| > 126` (outside the `i128` rational range).
    pub fn new(exponent: i32) -> Self {
        assert!(
            exponent.abs() <= MAX_ABS_EXPONENT,
            "Pow2 exponent {exponent} out of range ±{MAX_ABS_EXPONENT}"
        );
        Pow2 { exponent }
    }

    /// The exponent `χ` such that this value is `2^χ`.
    pub const fn exponent(&self) -> i32 {
        self.exponent
    }

    /// The exact rational value `2^χ`.
    pub fn value(&self) -> Rational {
        if self.exponent >= 0 {
            Rational::new(1i128 << self.exponent, 1)
        } else {
            Rational::new(1, 1i128 << (-self.exponent))
        }
    }

    /// The exact `Time` value `2^χ`.
    pub fn as_time(&self) -> Time {
        Time::from_rational(self.value())
    }

    /// The grid point `λ·2^χ` as an exact `Time`.
    pub fn grid_point(&self, lambda: i64) -> Time {
        Time::from_rational(
            self.value()
                .checked_mul_int(lambda as i128)
                .expect("grid point overflow"),
        )
    }

    /// `2^(χ+1)`.
    pub fn double(&self) -> Pow2 {
        Pow2::new(self.exponent + 1)
    }

    /// `2^(χ-1)`.
    pub fn halve(&self) -> Pow2 {
        Pow2::new(self.exponent - 1)
    }

    /// Largest integer `k` with `k·2^χ ≤ t` — i.e. `floor(t / 2^χ)`.
    pub fn floor_div(&self, t: Time) -> i128 {
        let q = t
            .rational()
            .checked_div(&self.value())
            .expect("floor_div overflow");
        q.floor()
    }

    /// Smallest integer multiple of `2^χ` strictly greater than `t`,
    /// returned as the multiplier `λ = floor(t/2^χ) + 1`.
    pub fn next_multiple_after(&self, t: Time) -> i128 {
        self.floor_div(t) + 1
    }

    /// Largest `Pow2` that is `< t`, i.e. the largest `χ` with `2^χ < t`.
    ///
    /// # Panics
    /// Panics if `t ≤ 0`.
    pub fn largest_below(t: Time) -> Pow2 {
        assert!(t.is_positive(), "largest_below requires t > 0, got {t}");
        // Start from an exponent guaranteed to be >= the answer, then walk
        // down. The f64 log2 gives a starting guess; exact comparisons make
        // the final decision, so float error only costs a couple of probes.
        let guess = t.to_f64().log2().ceil() as i32 + 1;
        let mut chi = guess.clamp(-MAX_ABS_EXPONENT, MAX_ABS_EXPONENT);
        while Pow2::new(chi).as_time() >= t {
            chi -= 1;
            assert!(
                chi >= -MAX_ABS_EXPONENT,
                "largest_below underflow for t = {t}"
            );
        }
        // Walk up in case the guess was too small.
        while chi < MAX_ABS_EXPONENT && Pow2::new(chi + 1).as_time() < t {
            chi += 1;
        }
        Pow2::new(chi)
    }

    /// The unique `X` such that `2^X < t ≤ 2^(X+1)` (used for the critical
    /// path bracket `2^X < C ≤ 2^(X+1)` in Lemma 4).
    ///
    /// # Panics
    /// Panics if `t ≤ 0`.
    pub fn bracket_exponent(t: Time) -> i32 {
        let below = Pow2::largest_below(t);
        // `below` satisfies 2^χ < t; check t ≤ 2^(χ+1) which holds by
        // maximality.
        debug_assert!(below.double().as_time() >= t);
        below.exponent()
    }
}

impl fmt::Debug for Pow2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{}", self.exponent)
    }
}

impl fmt::Display for Pow2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{}", self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        assert_eq!(Pow2::new(0).as_time(), Time::ONE);
        assert_eq!(Pow2::new(3).as_time(), Time::from_int(8));
        assert_eq!(Pow2::new(-2).as_time(), Time::from_ratio(1, 4));
    }

    #[test]
    fn grid_points() {
        assert_eq!(Pow2::new(-1).grid_point(13), Time::from_ratio(13, 2));
        assert_eq!(Pow2::new(2).grid_point(1), Time::from_int(4));
    }

    #[test]
    fn floor_div_exact() {
        let p = Pow2::new(-1); // 0.5
        assert_eq!(p.floor_div(Time::from_millis(6, 800)), 13); // 6.8/0.5 = 13.6
        assert_eq!(p.floor_div(Time::from_int(3)), 6);
        assert_eq!(p.next_multiple_after(Time::from_int(3)), 7);
    }

    #[test]
    fn largest_below_brackets() {
        // C = 6.8: 2^2 = 4 < 6.8 <= 8 = 2^3.
        let p = Pow2::largest_below(Time::from_millis(6, 800));
        assert_eq!(p.exponent(), 2);
        assert_eq!(Pow2::bracket_exponent(Time::from_millis(6, 800)), 2);
        // Exact powers: 2^3 < 8 is false, so largest below 8 is 2^2.
        assert_eq!(Pow2::largest_below(Time::from_int(8)).exponent(), 2);
        assert_eq!(Pow2::bracket_exponent(Time::from_int(8)), 2);
        // Tiny values go negative.
        assert_eq!(Pow2::largest_below(Time::from_ratio(1, 4)).exponent(), -3);
    }

    #[test]
    fn largest_below_tiny_and_huge() {
        assert_eq!(
            Pow2::largest_below(Time::from_ratio(1, 1 << 20)).exponent(),
            -21
        );
        assert_eq!(
            Pow2::largest_below(Time::from_int(1 << 40)).exponent(),
            39
        );
    }

    #[test]
    #[should_panic(expected = "requires t > 0")]
    fn largest_below_rejects_zero() {
        let _ = Pow2::largest_below(Time::ZERO);
    }

    #[test]
    fn double_halve() {
        assert_eq!(Pow2::new(3).double().exponent(), 4);
        assert_eq!(Pow2::new(3).halve().exponent(), 2);
    }
}
