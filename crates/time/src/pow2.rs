//! Exact powers of two with integer (possibly negative) exponents.
//!
//! The category machinery of the paper (Definition 2) works on the dyadic
//! grid: a task's *power level* `χ` is the largest integer such that some
//! multiple `λ·2^χ` lies strictly inside the criticality interval
//! `(s∞, f∞)`. [`Pow2`] represents `2^χ` exactly for any `χ ∈ [-126, 126]`
//! and provides the grid arithmetic needed to locate those multiples.

use crate::rational::Rational;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The exact value `2^exponent`, with `exponent` possibly negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pow2 {
    exponent: i32,
}

/// Exponent range representable inside an `i128` rational.
const MAX_ABS_EXPONENT: i32 = 126;

impl Pow2 {
    /// `2^0 = 1`.
    pub const ONE: Pow2 = Pow2 { exponent: 0 };

    /// Creates `2^exponent`.
    ///
    /// # Panics
    /// Panics if `|exponent| > 126` (outside the `i128` rational range).
    pub fn new(exponent: i32) -> Self {
        assert!(
            exponent.abs() <= MAX_ABS_EXPONENT,
            "Pow2 exponent {exponent} out of range ±{MAX_ABS_EXPONENT}"
        );
        Pow2 { exponent }
    }

    /// The exponent `χ` such that this value is `2^χ`.
    pub const fn exponent(&self) -> i32 {
        self.exponent
    }

    /// The exact rational value `2^χ`.
    pub fn value(&self) -> Rational {
        if self.exponent >= 0 {
            Rational::new(1i128 << self.exponent, 1)
        } else {
            Rational::new(1, 1i128 << (-self.exponent))
        }
    }

    /// The exact `Time` value `2^χ`.
    pub fn as_time(&self) -> Time {
        Time::from_rational(self.value())
    }

    /// The grid point `λ·2^χ` as an exact `Time`.
    pub fn grid_point(&self, lambda: i64) -> Time {
        Time::from_rational(
            self.value()
                .checked_mul_int(lambda as i128)
                .expect("grid point overflow"),
        )
    }

    /// `2^(χ+1)`.
    pub fn double(&self) -> Pow2 {
        Pow2::new(self.exponent + 1)
    }

    /// `2^(χ-1)`.
    pub fn halve(&self) -> Pow2 {
        Pow2::new(self.exponent - 1)
    }

    /// Largest integer `k` with `k·2^χ ≤ t` — i.e. `floor(t / 2^χ)`.
    pub fn floor_div(&self, t: Time) -> i128 {
        // Dyadic fast path: for `t = m·2^e`, `t / 2^χ = m·2^(e−χ)`, so
        // the floor is a pure shift of the mantissa — no gcd, no i128
        // division. A right shift of a negative mantissa rounds toward
        // −∞, which is exactly `floor`.
        if let Some(d) = t.dyadic() {
            let m = d.mantissa() as i128;
            if m == 0 {
                return 0;
            }
            let shift = i64::from(d.exponent()) - i64::from(self.exponent);
            if shift < 0 {
                let s = -shift;
                return if s >= 127 {
                    if m >= 0 { 0 } else { -1 }
                } else {
                    m >> s
                };
            }
            let bitlen = i64::from(128 - m.unsigned_abs().leading_zeros());
            if bitlen + shift <= 127 {
                return m << shift;
            }
            // The exact quotient overflows i128; fall through so the
            // rational path reports it the way it always has.
        }
        let q = t
            .rational()
            .checked_div(&self.value())
            .expect("floor_div overflow");
        q.floor()
    }

    /// Smallest integer multiple of `2^χ` strictly greater than `t`,
    /// returned as the multiplier `λ = floor(t/2^χ) + 1`.
    pub fn next_multiple_after(&self, t: Time) -> i128 {
        self.floor_div(t) + 1
    }

    /// Largest `Pow2` that is `< t`, i.e. the largest `χ` with `2^χ < t`.
    ///
    /// # Panics
    /// Panics if `t ≤ 0`.
    pub fn largest_below(t: Time) -> Pow2 {
        assert!(t.is_positive(), "largest_below requires t > 0, got {t}");
        // Dyadic fast path: `t = m·2^e` with `m` odd ≥ 1 and
        // `b = bitlen(m)` gives `2^(b−1+e) ≤ t < 2^(b+e)`. The lower
        // bound is *equality* exactly when `m = 1` (then `t` sits on the
        // grid point and, per Definition 2's strict inequality, the
        // answer steps down to `e − 1`); for odd `m ≥ 3` it is strict.
        if let Some(d) = t.dyadic() {
            let chi = if d.mantissa() == 1 {
                d.exponent() - 1
            } else {
                // b ≤ 64 and b + e ≤ 127 (Dyadic's range), so χ ≤ 126.
                (64 - d.mantissa().leading_zeros() as i32) - 1 + d.exponent()
            };
            assert!(chi >= -MAX_ABS_EXPONENT, "largest_below underflow for t = {t}");
            return Pow2::new(chi);
        }
        // Start from an exponent guaranteed to be >= the answer, then walk
        // down. The guess comes from exact numerator/denominator bit
        // lengths: for reduced `t = n/d > 0`, `2^(bn-1) ≤ n < 2^bn` and
        // `2^(bd-1) ≤ d < 2^bd` give `2^(bn-bd-1) < t < 2^(bn-bd+1)`, so
        // `bn - bd + 1` bounds `log2 t` from above and the correction
        // loops below probe at most twice. (The old `t.to_f64().log2()`
        // guess saturated through `as i32` whenever the float pipeline
        // produced ±inf/NaN, starting the walk from ±MAX_ABS_EXPONENT —
        // a 250-step correction loop in the worst case.)
        let r = t.rational();
        let bn = 128 - r.numer().unsigned_abs().leading_zeros() as i32;
        let bd = 128 - r.denom().unsigned_abs().leading_zeros() as i32;
        let guess = bn - bd + 1;
        let mut chi = guess.clamp(-MAX_ABS_EXPONENT, MAX_ABS_EXPONENT);
        while Pow2::new(chi).as_time() >= t {
            chi -= 1;
            assert!(
                chi >= -MAX_ABS_EXPONENT,
                "largest_below underflow for t = {t}"
            );
        }
        // Walk up in case the guess was too small.
        while chi < MAX_ABS_EXPONENT && Pow2::new(chi + 1).as_time() < t {
            chi += 1;
        }
        Pow2::new(chi)
    }

    /// The unique `X` such that `2^X < t ≤ 2^(X+1)` (used for the critical
    /// path bracket `2^X < C ≤ 2^(X+1)` in Lemma 4).
    ///
    /// # Panics
    /// Panics if `t ≤ 0`.
    pub fn bracket_exponent(t: Time) -> i32 {
        let below = Pow2::largest_below(t);
        // `below` satisfies 2^χ < t; check t ≤ 2^(χ+1) which holds by
        // maximality.
        debug_assert!(below.double().as_time() >= t);
        below.exponent()
    }
}

impl fmt::Debug for Pow2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{}", self.exponent)
    }
}

impl fmt::Display for Pow2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{}", self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values() {
        assert_eq!(Pow2::new(0).as_time(), Time::ONE);
        assert_eq!(Pow2::new(3).as_time(), Time::from_int(8));
        assert_eq!(Pow2::new(-2).as_time(), Time::from_ratio(1, 4));
    }

    #[test]
    fn grid_points() {
        assert_eq!(Pow2::new(-1).grid_point(13), Time::from_ratio(13, 2));
        assert_eq!(Pow2::new(2).grid_point(1), Time::from_int(4));
    }

    #[test]
    fn floor_div_exact() {
        let p = Pow2::new(-1); // 0.5
        assert_eq!(p.floor_div(Time::from_millis(6, 800)), 13); // 6.8/0.5 = 13.6
        assert_eq!(p.floor_div(Time::from_int(3)), 6);
        assert_eq!(p.next_multiple_after(Time::from_int(3)), 7);
    }

    #[test]
    fn largest_below_brackets() {
        // C = 6.8: 2^2 = 4 < 6.8 <= 8 = 2^3.
        let p = Pow2::largest_below(Time::from_millis(6, 800));
        assert_eq!(p.exponent(), 2);
        assert_eq!(Pow2::bracket_exponent(Time::from_millis(6, 800)), 2);
        // Exact powers: 2^3 < 8 is false, so largest below 8 is 2^2.
        assert_eq!(Pow2::largest_below(Time::from_int(8)).exponent(), 2);
        assert_eq!(Pow2::bracket_exponent(Time::from_int(8)), 2);
        // Tiny values go negative.
        assert_eq!(Pow2::largest_below(Time::from_ratio(1, 4)).exponent(), -3);
    }

    #[test]
    fn largest_below_tiny_and_huge() {
        assert_eq!(
            Pow2::largest_below(Time::from_ratio(1, 1 << 20)).exponent(),
            -21
        );
        assert_eq!(
            Pow2::largest_below(Time::from_int(1 << 40)).exponent(),
            39
        );
    }

    #[test]
    #[should_panic(expected = "requires t > 0")]
    fn largest_below_rejects_zero() {
        let _ = Pow2::largest_below(Time::ZERO);
    }

    #[test]
    fn double_halve() {
        assert_eq!(Pow2::new(3).double().exponent(), 4);
        assert_eq!(Pow2::new(3).halve().exponent(), 2);
    }

    #[test]
    fn largest_below_at_extreme_exponents() {
        // Exact grid points at the edges of the dyadic range: the answer
        // must step strictly below (Definition 2 strict inequality).
        assert_eq!(Pow2::largest_below(Time::from_dyadic(1, 126)).exponent(), 125);
        assert_eq!(Pow2::largest_below(Time::from_dyadic(1, -125)).exponent(), -126);
        // Odd mantissas near the edges bracket from inside the octave.
        assert_eq!(Pow2::largest_below(Time::from_dyadic(3, 124)).exponent(), 125);
        assert_eq!(Pow2::largest_below(Time::from_dyadic(3, -126)).exponent(), -125);
        assert_eq!(
            Pow2::largest_below(Time::from_dyadic(i64::MAX, -126)).exponent(),
            -64
        );
    }

    /// Regression for the starting guess on *non-dyadic* rationals at
    /// extreme exponents (the slow path; dyadic values never reach the
    /// guess). The old f64 `log2` guess risked ±inf/NaN saturating
    /// through `as i32` into a wildly wrong start; the exact bit-length
    /// bound must land within two probes of the answer everywhere.
    #[test]
    fn largest_below_extreme_nondyadic_rationals() {
        // Tiny: t = 1/(3·2^120), so 2^-122 < t < 2^-121.
        let tiny = Time::from_rational(Rational::new(1, 3 * (1i128 << 120)));
        assert_eq!(Pow2::largest_below(tiny).exponent(), -122);
        // Huge: t = 3·2^120/7 ≈ 2^118.78.
        let huge = Time::from_rational(Rational::new(3 * (1i128 << 120), 7));
        assert_eq!(Pow2::largest_below(huge).exponent(), 118);
        // Numerator at the i128 ceiling: t = (2^127 − 1)/3 ≈ 2^125.4.
        let max = Time::from_rational(Rational::new(i128::MAX, 3));
        assert_eq!(Pow2::largest_below(max).exponent(), 125);
        // Maximal bit-length mismatch both ways.
        let lopsided_small = Time::from_rational(Rational::new(3, i128::MAX));
        assert_eq!(Pow2::largest_below(lopsided_small).exponent(), -126);
        let exact_power_ratio = Time::from_rational(Rational::new(
            (1i128 << 125) + 1,
            (1i128 << 5) + 1,
        ));
        assert_eq!(Pow2::largest_below(exact_power_ratio).exponent(), 119);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn largest_below_underflows_past_min_exponent() {
        // 2^-126 is on the grid, but the strictly-smaller power 2^-127
        // is outside the representable range.
        let _ = Pow2::largest_below(Time::from_dyadic(1, -126));
    }

    #[test]
    fn floor_div_at_extreme_exponents() {
        // Same-scale extremes divide to exactly 1.
        assert_eq!(Pow2::new(126).floor_div(Time::from_dyadic(1, 126)), 1);
        assert_eq!(Pow2::new(-126).floor_div(Time::from_dyadic(1, -126)), 1);
        // A tiny positive value under a huge divisor floors to 0; the
        // same magnitude negated floors to −1 (floor, not truncation).
        assert_eq!(Pow2::new(126).floor_div(Time::from_dyadic(1, -126)), 0);
        assert_eq!(Pow2::new(126).floor_div(Time::from_dyadic(-1, -126)), -1);
        // A huge value over a small divisor that still fits i128.
        assert_eq!(Pow2::new(0).floor_div(Time::from_dyadic(1, 126)), 1i128 << 126);
        assert_eq!(Pow2::new(126).floor_div(Time::ZERO), 0);
    }

    #[test]
    fn floor_div_grid_point_boundaries_are_strict() {
        // Exactly on a grid point: floor_div is exact and the next
        // multiple is strictly after (λ, not λ itself).
        let p = Pow2::new(-2);
        let on_grid = Time::from_ratio(3, 4); // 3·2^-2
        assert_eq!(p.floor_div(on_grid), 3);
        assert_eq!(p.next_multiple_after(on_grid), 4);
        // Just inside the cell, the floor stays at 3.
        assert_eq!(p.floor_div(Time::from_ratio(3_000_001, 4_000_000)), 3);
        // Non-dyadic values agree with the rational slow path.
        let third = Time::from_ratio(1, 3);
        assert_eq!(p.floor_div(third), 1); // (1/3)/(1/4) = 4/3
        assert_eq!(p.next_multiple_after(third), 2);
    }

    #[test]
    fn fast_and_slow_paths_agree_on_mixed_values() {
        // Cross-check the dyadic shift path against exact rational
        // division over a grid of (value, exponent) pairs.
        for chi in [-7i32, -3, -1, 0, 1, 3, 7] {
            let p = Pow2::new(chi);
            for num in [-17i64, -5, -1, 1, 3, 8, 21, 64] {
                for den in [1i64, 2, 4, 16, 3, 5] {
                    let t = Time::from_ratio(num, den);
                    let exact = t
                        .rational()
                        .checked_div(&p.value())
                        .expect("in range")
                        .floor();
                    assert_eq!(p.floor_div(t), exact, "χ={chi}, t={num}/{den}");
                }
            }
        }
    }
}
