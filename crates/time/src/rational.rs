//! Exact rational numbers over `i128` with automatic reduction.
//!
//! The scheduling analysis in the CatBatch paper hinges on *strict*
//! inequalities between earliest start/finish times and dyadic grid points
//! `λ·2^χ` (Definition 2 of the paper). Floating point cannot decide those
//! inequalities reliably when values land exactly on grid points — which
//! happens for essentially every task of the paper's worked examples — so
//! the whole workspace computes on exact rationals.
//!
//! All arithmetic is checked: an overflow of the `i128` numerator or
//! denominator panics with a descriptive message rather than silently
//! wrapping. With reduced fractions and the workloads in this repository
//! (dyadic or decimal grids), overflow would require astronomically sized
//! instances.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs() as i128, den);
        if g <= 1 {
            Rational { num, den }
        } else {
            Rational {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates a rational from an integer.
    pub const fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The reduced numerator (sign-carrying).
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The reduced denominator (always positive).
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The sign of the rational: -1, 0 or 1.
    pub const fn signum(&self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer `k` with `k <= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `k` with `k >= self`.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Approximate conversion to `f64` (for reporting only; never used in
    /// scheduling decisions).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition, returning `None` on `i128` overflow.
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, other.den);
        let lhs_scale = other.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(other.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    /// Checked subtraction, returning `None` on `i128` overflow.
    pub fn checked_sub(&self, other: &Rational) -> Option<Rational> {
        self.checked_add(&-*other)
    }

    /// Checked multiplication, returning `None` on `i128` overflow.
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs() as i128, other.den);
        let g2 = gcd(other.num.unsigned_abs() as i128, self.den);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Rational::new(num, den))
    }

    /// Checked division, returning `None` on overflow or division by zero.
    pub fn checked_div(&self, other: &Rational) -> Option<Rational> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(&Rational::new(other.den, other.num))
    }

    /// Multiplies by a plain integer (checked).
    pub fn checked_mul_int(&self, k: i128) -> Option<Rational> {
        let g = gcd(k.unsigned_abs() as i128, self.den);
        let num = self.num.checked_mul(k / g)?;
        Some(Rational::new(num, self.den / g))
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// `min` of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b (b, d > 0). Cross-reduce to lower
        // overflow risk, then use checked multiplication with a widening
        // fallback through i128->f64 is unacceptable; instead panic loudly.
        let g_den = gcd(self.den, other.den);
        let lhs_scale = other.den / g_den;
        let rhs_scale = self.den / g_den;
        let lhs = self
            .num
            .checked_mul(lhs_scale)
            .expect("Rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(rhs_scale)
            .expect("Rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $checked:ident, $msg:literal) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).expect($msg)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).expect($msg)
            }
        }
    };
}

impl_binop!(Add, add, checked_add, "Rational addition overflow");
impl_binop!(Sub, sub, checked_sub, "Rational subtraction overflow");
impl_binop!(Mul, mul, checked_mul, "Rational multiplication overflow");
impl_binop!(Div, div, checked_div, "Rational division overflow or by zero");

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(6, -4).numer(), -3);
        assert_eq!(r(6, -4).denom(), 2);
        assert_eq!(r(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(3, 5), r(-3, 5));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::ONE);
        assert!(r(34, 5) > r(27, 4)); // 6.8 > 6.75
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(6, 2).floor(), 3);
        assert_eq!(r(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Rational::new(i128::MAX, 1);
        assert!(big.checked_add(&Rational::ONE).is_none());
        assert!(big.checked_mul(&Rational::from_int(2)).is_none());
        assert!(Rational::ONE.checked_div(&Rational::ZERO).is_none());
    }

    #[test]
    fn mul_int_cross_reduces() {
        // 1/6 * 4 = 2/3 without overflowing intermediates.
        assert_eq!(r(1, 6).checked_mul_int(4).unwrap(), r(2, 3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", r(5, 1)), "5");
        assert_eq!(format!("{}", r(34, 5)), "34/5");
        assert_eq!(format!("{:?}", r(-1, 2)), "-1/2");
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    fn to_f64_close() {
        assert!((r(34, 5).to_f64() - 6.8).abs() < 1e-12);
    }
}
