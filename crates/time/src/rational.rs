//! Exact rational numbers over `i128` with automatic reduction.
//!
//! The scheduling analysis in the CatBatch paper hinges on *strict*
//! inequalities between earliest start/finish times and dyadic grid points
//! `λ·2^χ` (Definition 2 of the paper). Floating point cannot decide those
//! inequalities reliably when values land exactly on grid points — which
//! happens for essentially every task of the paper's worked examples — so
//! the whole workspace computes on exact rationals.
//!
//! All arithmetic is checked: an overflow of the `i128` numerator or
//! denominator panics with a descriptive message rather than silently
//! wrapping. With reduced fractions and the workloads in this repository
//! (dyadic or decimal grids), overflow would require astronomically sized
//! instances.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers (Euclid).
///
/// Operates on `u128` so that `i128::MIN.unsigned_abs()` (= `2^127`,
/// not representable as `i128`) is handled without wraparound.
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Signed GCD helper for the common case where both magnitudes fit `i128`.
fn gcd_i(a: i128, b: i128) -> i128 {
    gcd(a.unsigned_abs(), b.unsigned_abs()) as i128
}

/// A checked rational operation overflowed: the exact result exists
/// mathematically but its reduced numerator or denominator does not fit
/// in `i128`. Returned by the `try_*` arithmetic on [`Rational`] (and
/// re-exported through `rigid_time`); the operator impls (`+`, `*`, …)
/// panic with this error's message instead of silently wrapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OverflowError {
    /// The operation that overflowed (`"add"`, `"mul"`, …).
    pub op: &'static str,
}

impl fmt::Display for OverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational {} overflow: result exceeds i128", self.op)
    }
}

impl std::error::Error for OverflowError {}

/// Correctly rounded `n / d` as an `f64`, for nonzero `n, d`.
///
/// Long-divides the exact integers into a ≥55-bit quotient mantissa
/// (53 target bits plus guard/round) with the remainder folded into a
/// sticky bit, then rounds to nearest-even exactly once. All `u128`
/// ratios lie in `[2^-127, 2^127]`, safely inside normal `f64` range,
/// so the final power-of-two scaling is exact.
fn div_round_nearest(n: u128, d: u128) -> f64 {
    let mut mant = n / d;
    let mut rem = n % d;
    if mant >> 54 != 0 {
        // The integer quotient already carries ≥55 bits; any nonzero
        // remainder only matters as a sticky bit.
        return round_mantissa_to_f64(mant, rem != 0, 0);
    }
    // Pull fractional quotient bits until the mantissa has 55 bits.
    // `rem < d <= 2^127` keeps `rem << 1` inside u128; the loop runs at
    // most ~182 times (127 leading-zero bits + 55 mantissa bits).
    let mut exp = 0i32;
    while mant >> 54 == 0 {
        mant <<= 1;
        rem <<= 1;
        exp -= 1;
        if rem >= d {
            rem -= d;
            mant |= 1;
        }
    }
    round_mantissa_to_f64(mant, rem != 0, exp)
}

/// Rounds `mant * 2^exp` (with `sticky` recording discarded low bits)
/// to the nearest `f64`, ties to even. `mant` must be nonzero and the
/// result must lie in normal `f64` range.
fn round_mantissa_to_f64(mant: u128, sticky: bool, exp: i32) -> f64 {
    let bits = 128 - mant.leading_zeros() as i32;
    let excess = bits - 53;
    if excess <= 0 {
        // Already exact in 53 bits (sticky can only be set when the
        // mantissa is full-width, so it is false here).
        return mant as f64 * 2f64.powi(exp);
    }
    let kept = (mant >> excess) as u64;
    let dropped = mant & ((1u128 << excess) - 1);
    let half = 1u128 << (excess - 1);
    let round_up = match dropped.cmp(&half) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => sticky || (kept & 1 == 1),
    };
    // `kept + 1` may carry to 2^53, still exactly representable.
    (kept + round_up as u64) as f64 * 2f64.powi(exp + excess)
}

/// Full 128×128→256-bit unsigned multiplication, as `(hi, lo)` limbs.
fn widemul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a0, a1) = (a & MASK, a >> 64);
    let (b0, b1) = (b & MASK, b >> 64);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = a1 * b1 + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        match Rational::try_new(num, den) {
            Ok(r) => r,
            Err(e) => {
                assert!(den != 0, "Rational with zero denominator");
                panic!("{e}");
            }
        }
    }

    /// Checked constructor: reduces `num/den` and normalizes the sign,
    /// returning a typed [`OverflowError`] when the reduced value cannot
    /// be represented (only possible at the extreme `i128::MIN` edge,
    /// e.g. `den = i128::MIN` with an odd numerator).
    ///
    /// # Panics
    /// Panics if `den == 0` (that is a domain error, not an overflow).
    pub fn try_new(num: i128, den: i128) -> Result<Self, OverflowError> {
        assert!(den != 0, "Rational with zero denominator");
        let negative = (num < 0) != (den < 0);
        // Reduce on unsigned magnitudes so i128::MIN never wraps.
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        let rn = num.unsigned_abs() / g;
        let rd = den.unsigned_abs() / g;
        let err = OverflowError { op: "normalize" };
        let den = i128::try_from(rd).map_err(|_| err)?;
        let num = if negative {
            // -2^127 is representable; 2^127 is not.
            if rn > (1u128 << 127) {
                return Err(err);
            }
            (rn as i128).wrapping_neg()
        } else {
            i128::try_from(rn).map_err(|_| err)?
        };
        Ok(Rational { num, den })
    }

    /// Crate-internal const constructor from parts that are *already*
    /// reduced and sign-normalized (`den > 0`, `gcd(num, den) = 1`). Used
    /// by the dyadic fast path, whose canonical form guarantees both.
    pub(crate) const fn from_reduced_parts(num: i128, den: i128) -> Self {
        debug_assert!(den > 0);
        Rational { num, den }
    }

    /// Creates a rational from an integer.
    pub const fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The reduced numerator (sign-carrying).
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The reduced denominator (always positive).
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The sign of the rational: -1, 0 or 1.
    pub const fn signum(&self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Absolute value.
    ///
    /// # Panics
    /// Panics (instead of wrapping) if the numerator is `i128::MIN`.
    pub fn abs(&self) -> Self {
        Rational {
            num: self
                .num
                .checked_abs()
                .expect("Rational abs overflow: |numerator| exceeds i128"),
            den: self.den,
        }
    }

    /// Largest integer `k` with `k <= self` (Euclidean division — exact
    /// for every representable value, including `i128::MIN` numerators).
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `k` with `k >= self`.
    pub fn ceil(&self) -> i128 {
        let q = self.num.div_euclid(self.den);
        if self.num.rem_euclid(self.den) == 0 {
            q
        } else {
            q + 1
        }
    }

    /// Correctly rounded conversion to `f64` (for reporting only; never
    /// used in scheduling decisions).
    ///
    /// Casting `num` and `den` to `f64` independently rounds each to 53
    /// bits *before* the division, so large reduced rationals (the kind
    /// `worst_case_hunt` climbing produces) could be off by up to a few
    /// ulps in journals and bench JSON. Instead we long-divide the exact
    /// integers into a 55-bit quotient plus a sticky bit, then round to
    /// nearest-even once. Every `i128/i128` ratio lies well inside the
    /// normal `f64` range (`2^-127 ..= 2^127`), so no overflow/underflow
    /// handling is needed and the final power-of-two scaling is exact.
    pub fn to_f64(&self) -> f64 {
        if self.num == 0 {
            return 0.0;
        }
        let negative = self.num < 0;
        let n = self.num.unsigned_abs();
        let d = self.den as u128; // den > 0 invariant
        let value = div_round_nearest(n, d);
        if negative { -value } else { value }
    }

    /// Checked addition, returning `None` on `i128` overflow. The result
    /// is always gcd-normalized (as is every `Rational`).
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let g = gcd_i(self.den, other.den);
        let lhs_scale = other.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(other.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Rational::try_new(num, den).ok()
    }

    /// Checked subtraction, returning `None` on `i128` overflow.
    pub fn checked_sub(&self, other: &Rational) -> Option<Rational> {
        self.checked_add(&-*other)
    }

    /// Checked multiplication, returning `None` on `i128` overflow.
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_i(self.num, other.den);
        let g2 = gcd_i(other.num, self.den);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Rational::try_new(num, den).ok()
    }

    /// Checked division, returning `None` on overflow or division by zero.
    pub fn checked_div(&self, other: &Rational) -> Option<Rational> {
        if other.is_zero() {
            return None;
        }
        let recip = Rational::try_new(other.den, other.num).ok()?;
        self.checked_mul(&recip)
    }

    /// Multiplies by a plain integer (checked).
    pub fn checked_mul_int(&self, k: i128) -> Option<Rational> {
        let g = gcd_i(k, self.den);
        let num = self.num.checked_mul(k / g)?;
        Rational::try_new(num, self.den / g).ok()
    }

    /// Addition with a typed [`OverflowError`] instead of `None`.
    pub fn try_add(&self, other: &Rational) -> Result<Rational, OverflowError> {
        self.checked_add(other).ok_or(OverflowError { op: "add" })
    }

    /// Subtraction with a typed [`OverflowError`] instead of `None`.
    pub fn try_sub(&self, other: &Rational) -> Result<Rational, OverflowError> {
        self.checked_sub(other).ok_or(OverflowError { op: "sub" })
    }

    /// Multiplication with a typed [`OverflowError`] instead of `None`.
    pub fn try_mul(&self, other: &Rational) -> Result<Rational, OverflowError> {
        self.checked_mul(other).ok_or(OverflowError { op: "mul" })
    }

    /// Division with a typed [`OverflowError`] instead of `None`.
    ///
    /// # Panics
    /// Panics if `other` is zero (domain error, not overflow).
    pub fn try_div(&self, other: &Rational) -> Result<Rational, OverflowError> {
        assert!(!other.is_zero(), "Rational division by zero");
        self.checked_div(other).ok_or(OverflowError { op: "div" })
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// `min` of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b (b, d > 0). Equal denominators (the
        // overwhelmingly common case on integer grids) compare directly.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // Signs decide without any multiplication.
        let (ls, rs) = (self.signum(), other.signum());
        if ls != rs {
            return ls.cmp(&rs);
        }
        // Cross-reduce, then try i128 cross-multiplication; fall back to
        // exact 256-bit magnitude comparison instead of panicking —
        // comparison is total and never overflows.
        let g_den = gcd_i(self.den, other.den);
        let lhs_scale = other.den / g_den;
        let rhs_scale = self.den / g_den;
        match (
            self.num.checked_mul(lhs_scale),
            other.num.checked_mul(rhs_scale),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => {
                let lhs = widemul(self.num.unsigned_abs(), lhs_scale.unsigned_abs());
                let rhs = widemul(other.num.unsigned_abs(), rhs_scale.unsigned_abs());
                // Both sides share the sign `ls` here (signs were equal
                // and neither is zero, else checked_mul succeeded).
                if ls >= 0 {
                    lhs.cmp(&rhs)
                } else {
                    rhs.cmp(&lhs)
                }
            }
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $checked:ident, $msg:literal) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).expect($msg)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).expect($msg)
            }
        }
    };
}

impl_binop!(Add, add, checked_add, "Rational addition overflow");
impl_binop!(Sub, sub, checked_sub, "Rational subtraction overflow");
impl_binop!(Mul, mul, checked_mul, "Rational multiplication overflow");
impl_binop!(Div, div, checked_div, "Rational division overflow or by zero");

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self
                .num
                .checked_neg()
                .expect("Rational negation overflow: -i128::MIN exceeds i128"),
            den: self.den,
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(6, -4).numer(), -3);
        assert_eq!(r(6, -4).denom(), 2);
        assert_eq!(r(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(3, 5), r(-3, 5));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::ONE);
        assert!(r(34, 5) > r(27, 4)); // 6.8 > 6.75
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(6, 2).floor(), 3);
        assert_eq!(r(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Rational::new(i128::MAX, 1);
        assert!(big.checked_add(&Rational::ONE).is_none());
        assert!(big.checked_mul(&Rational::from_int(2)).is_none());
        assert!(Rational::ONE.checked_div(&Rational::ZERO).is_none());
    }

    #[test]
    fn mul_int_cross_reduces() {
        // 1/6 * 4 = 2/3 without overflowing intermediates.
        assert_eq!(r(1, 6).checked_mul_int(4).unwrap(), r(2, 3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", r(5, 1)), "5");
        assert_eq!(format!("{}", r(34, 5)), "34/5");
        assert_eq!(format!("{:?}", r(-1, 2)), "-1/2");
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    fn to_f64_close() {
        assert!((r(34, 5).to_f64() - 6.8).abs() < 1e-12);
    }

    /// Asserts `rat.to_f64()` is the correctly rounded double: the exact
    /// error is at most half an ulp, with ties only on even mantissas.
    /// Callers must keep |value| and the reduced denominator moderate
    /// (the exact difference below is computed in `i128` rationals).
    fn assert_correctly_rounded(rat: Rational) {
        let f = rat.to_f64();
        assert!(f.is_finite(), "{rat:?} -> {f}");
        if rat == Rational::ZERO {
            assert_eq!(f, 0.0);
            return;
        }
        assert_eq!(f < 0.0, rat < Rational::ZERO, "{rat:?} -> {f} wrong sign");
        // Decompose |f| exactly as mant * 2^exp, mant in [2^52, 2^53).
        let bits = f.abs().to_bits();
        let mant = ((bits & ((1u64 << 52) - 1)) | (1u64 << 52)) as i128;
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023 - 52;
        let f_rat = if exp >= 0 {
            Rational::new(mant << exp, 1)
        } else {
            Rational::new(mant, 1i128 << (-exp))
        };
        let v = rat.abs();
        let half_ulp = if exp >= 1 {
            Rational::new(1i128 << (exp - 1), 1)
        } else {
            Rational::new(1, 1i128 << (1 - exp))
        };
        let diff = if f_rat >= v { f_rat - v } else { v - f_rat };
        assert!(diff <= half_ulp, "{rat:?} -> {f} off by more than half an ulp");
        if diff == half_ulp {
            assert_eq!(mant & 1, 0, "{rat:?} -> {f} tie broken to odd mantissa");
        }
    }

    /// Regression: the old `num as f64 / den as f64` rounded both casts
    /// independently before the division, drifting large reduced
    /// rationals (the kind `worst_case_hunt` climbing produces) by an
    /// ulp. Expected values are the correctly rounded doubles.
    #[test]
    fn to_f64_is_correctly_rounded_on_hunt_sized_ratios() {
        let a = r(5855543267441242937, 93609460865670841);
        assert_eq!(a.to_f64(), 62.55290024417427);
        assert_ne!(a.numer() as f64 / a.denom() as f64, a.to_f64());
        let b = r(14904083994765921387896827, 1040025956730605916151403);
        assert_eq!(b.to_f64(), 14.330492328881817);
        assert_ne!(b.numer() as f64 / b.denom() as f64, b.to_f64());
        assert_correctly_rounded(a);
        assert_correctly_rounded(-a);
    }

    /// Numerators just past `2^53` are where the independent-cast error
    /// first bites: `12636956566307343 as f64` already rounds, and the
    /// old code then divided the rounded value.
    #[test]
    fn to_f64_near_2_pow_53() {
        let v = r(12636956566307343, 10);
        assert_eq!(v.to_f64(), 1263695656630734.2);
        assert_ne!(v.to_f64(), 12636956566307343i128 as f64 / 10.0);
        // Exactly representable neighbours stay exact.
        assert_eq!(r(1i128 << 53, 1).to_f64(), 9007199254740992.0);
        assert_eq!(r((1i128 << 53) + 2, 1).to_f64(), 9007199254740994.0);
        // 2^53 + 1 is a perfect tie: round to even mantissa (2^53).
        assert_eq!(r((1i128 << 53) + 1, 1).to_f64(), 9007199254740992.0);
        assert_correctly_rounded(v);
        assert_correctly_rounded(r((1i128 << 53) + 1, 3));
    }

    /// Extreme exponents: power-of-two scaling must commute with the
    /// rounding (no subnormals are reachable from `i128` ratios).
    #[test]
    fn to_f64_extreme_exponents() {
        // 1/(3·2^100) = round(1/3) · 2^-100 — scaling is exact.
        let tiny = r(1, 3 * (1i128 << 100));
        assert_eq!(tiny.to_f64(), (1.0f64 / 3.0) * 2f64.powi(-100));
        // 3·2^120/7 = round(3/7) · 2^120.
        let huge = r(3 * (1i128 << 120), 7);
        assert_eq!(huge.to_f64(), (3.0f64 / 7.0) * 2f64.powi(120));
        // The extremes of the representable range stay finite and exact.
        assert_eq!(r(1i128 << 126, 1).to_f64(), 2f64.powi(126));
        assert_eq!(r(1, 1i128 << 126).to_f64(), 2f64.powi(-126));
        assert_eq!(r(i128::MIN, 1).to_f64(), -(2f64.powi(127)));
    }

    /// Property sweep: structured pseudo-random ratios across magnitudes
    /// are all correctly rounded (exact half-ulp check via rationals).
    #[test]
    fn to_f64_half_ulp_property() {
        let mut x: u128 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            // xorshift-ish mixer, deterministic.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            // Keep the ratio within ~2^±11 and denominators under 2^60
            // so the helper's exact difference arithmetic fits i128.
            let nbits = (next() % 21 + 30) as u32; // 30..=50
            let delta = (next() % 21) as i64 - 10; // -10..=10
            let dbits = (nbits as i64 + delta).clamp(2, 60) as u32;
            let n = ((next() >> (128 - nbits)) | (1u128 << (nbits - 1))) as i128;
            let d = ((next() >> (128 - dbits)) | (1u128 << (dbits - 1))) as i128;
            assert_correctly_rounded(r(n, d));
            assert_correctly_rounded(r(-n, d));
        }
    }

    #[test]
    fn cmp_never_overflows() {
        // Cross-multiplication of these exceeds i128; the old comparison
        // panicked here even though both values are representable.
        let a = r(i128::MAX, 3);
        let b = r(i128::MAX - 2, 3); // den stays 3 after reduction
        let c = r(i128::MAX, 7);
        assert!(a > b);
        assert!(a > c);
        assert!(c < b);
        // Negative side mirrors.
        assert!(-a < -b);
        assert!(-c > -b);
        // Mixed signs decide by sign alone.
        assert!(-a < c);
        // Self-comparison is equal.
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn i128_min_edges_do_not_wrap() {
        // unsigned_abs of MIN used to wrap through `as i128` in gcd.
        let m = r(i128::MIN, 2);
        assert_eq!(m.numer(), i128::MIN / 2);
        assert_eq!(m.denom(), 1);
        // Even-denominator MIN reduces fine.
        let half_min = r(i128::MIN, 4);
        assert_eq!(half_min.numer(), i128::MIN / 4);
        // MIN numerator with odd denominator stays MIN (no reduction).
        let raw = r(i128::MIN, 3);
        assert_eq!(raw.numer(), i128::MIN);
        assert_eq!(raw.denom(), 3);
        assert!(raw < Rational::ZERO);
        assert_eq!(raw.floor(), i128::MIN / 3 - 1);
        assert_eq!(raw.ceil(), i128::MIN / 3);
        // A negative-denominator MIN that cannot be sign-normalized is a
        // typed error, not a silent wrap.
        assert_eq!(
            Rational::try_new(3, i128::MIN),
            Err(OverflowError { op: "normalize" })
        );
        // ... but an even numerator reduces into range.
        assert_eq!(Rational::try_new(2, i128::MIN), Ok(r(-1, 1i128 << 126)));
    }

    #[test]
    fn try_ops_report_typed_overflow() {
        let big = Rational::new(i128::MAX, 1);
        assert_eq!(big.try_add(&Rational::ONE), Err(OverflowError { op: "add" }));
        assert_eq!(
            big.try_mul(&Rational::from_int(2)),
            Err(OverflowError { op: "mul" })
        );
        assert_eq!(big.try_sub(&-Rational::ONE), Err(OverflowError { op: "sub" }));
        assert!(big.try_add(&-Rational::ONE).is_ok());
        let msg = big.try_add(&Rational::ONE).unwrap_err().to_string();
        assert!(msg.contains("overflow"), "{msg}");
    }

    /// Regression for the `L^i_P(K)` lower-bound gadgets: a ~1e4-task
    /// chain of alternating fractional lengths must stay reduced (the
    /// running sum's denominator stays the lcm of the small task
    /// denominators, not their product) and must never overflow.
    #[test]
    fn long_alternating_chain_stays_normalized() {
        let lens = [r(1, 3), r(1, 7), r(3, 5), r(5, 8), r(1, 9), r(2, 11)];
        let mut sum = Rational::ZERO;
        for i in 0..10_000 {
            sum = sum
                .try_add(&lens[i % lens.len()])
                .expect("chain sum must not overflow");
            // Normalization invariant after every op.
            assert!(sum.denom() > 0);
            assert_eq!(gcd(sum.numer().unsigned_abs(), sum.denom().unsigned_abs()), 1);
            // lcm(3,7,5,8,9,11) = 27720: the reduced denominator divides it.
            assert_eq!(27720 % sum.denom(), 0);
        }
        // Exact closed form: 1667 full rounds minus the last 2 terms.
        let round: Rational = lens.iter().fold(Rational::ZERO, |a, b| a + *b);
        let expect = round.checked_mul_int(1667).unwrap() - r(1, 9) - r(2, 11);
        assert_eq!(sum, expect);
        // Comparisons against dyadic grid points keep working at size.
        assert!(sum > Rational::from_int(3000));
        assert!(sum < Rational::from_int(4000));
    }
}
