//! The [`Time`] type: an exact, totally ordered instant/duration scalar.
//!
//! `Time` wraps a [`Rational`] and is used for every temporal quantity in
//! the workspace: task execution times, schedule start/finish instants,
//! criticalities, category boundaries, areas and makespans. Keeping a
//! dedicated newtype (rather than using `Rational` directly) documents
//! intent at API boundaries and leaves room for unit checking.

use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact instant or duration.
///
/// `Time` is a thin wrapper over [`Rational`]; arithmetic is exact and
/// checked. Negative values are representable (differences of instants)
/// but task lengths and schedule instants are validated non-negative at
/// their construction sites.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(Rational);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(Rational::ZERO);
    /// One unit of time.
    pub const ONE: Time = Time(Rational::ONE);

    /// Creates a `Time` from a rational value.
    pub const fn from_rational(r: Rational) -> Self {
        Time(r)
    }

    /// Creates a `Time` from an integer number of units.
    pub const fn from_int(n: i64) -> Self {
        Time(Rational::from_int(n))
    }

    /// Creates a `Time` equal to `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Time(Rational::new(num as i128, den as i128))
    }

    /// Creates a `Time` from a decimal written as `int_part.frac` with the
    /// fractional part expressed in thousandths, e.g. `from_millis(6, 800)`
    /// is exactly `6.8`. This is how the paper's example values (6.8, 2.8,
    /// 0.6, …) are constructed without any float rounding.
    pub fn from_millis(int_part: i64, thousandths: i64) -> Self {
        assert!(
            (0..1000).contains(&thousandths),
            "thousandths must be in [0, 1000)"
        );
        let sign = if int_part < 0 { -1 } else { 1 };
        Time(Rational::new(
            int_part as i128 * 1000 + sign as i128 * thousandths as i128,
            1000,
        ))
    }

    /// Snaps an `f64` onto the dyadic grid with denominator `2^20`.
    ///
    /// Only used by random workload generators, which sample `f64` and then
    /// commit to the exact snapped value; scheduling itself never touches
    /// floats.
    ///
    /// # Panics
    /// Panics if `x` is not finite or overflows the grid.
    pub fn from_f64_snapped(x: f64) -> Self {
        assert!(x.is_finite(), "cannot snap a non-finite f64 to Time");
        const GRID: f64 = (1u64 << 20) as f64;
        let scaled = (x * GRID).round();
        assert!(
            scaled.abs() < i64::MAX as f64,
            "f64 value {x} overflows the Time grid"
        );
        Time(Rational::new(scaled as i128, 1i128 << 20))
    }

    /// The underlying rational value.
    pub const fn rational(&self) -> Rational {
        self.0
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.0.to_f64()
    }

    /// Returns `true` if this time is zero.
    pub const fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Returns `true` if this time is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.0.is_positive()
    }

    /// Returns `true` if this time is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.0.is_negative()
    }

    /// Minimum of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Maximum of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Multiplies by an integer (e.g. processor count when computing areas).
    pub fn mul_int(self, k: i64) -> Time {
        Time(
            self.0
                .checked_mul_int(k as i128)
                .expect("Time integer-multiplication overflow"),
        )
    }

    /// Divides by a positive integer (e.g. normalizing an area by `P`).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn div_int(self, k: i64) -> Time {
        Time(
            self.0
                .checked_div(&Rational::from_int(k))
                .expect("Time integer-division overflow or division by zero"),
        )
    }

    /// Checked addition with a typed error: `Err` when the exact sum's
    /// reduced form exceeds `i128` (see [`crate::OverflowError`]).
    pub fn try_add(self, rhs: Time) -> Result<Time, crate::OverflowError> {
        self.0.try_add(&rhs.0).map(Time)
    }

    /// Checked integer multiplication with a typed error.
    pub fn try_mul_int(self, k: i64) -> Result<Time, crate::OverflowError> {
        self.0
            .checked_mul_int(k as i128)
            .map(Time)
            .ok_or(crate::OverflowError { op: "mul_int" })
    }

    /// Exact ratio of two times, as a `Rational`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Time) -> Rational {
        self.0
            .checked_div(&other.0)
            .expect("Time ratio overflow or division by zero")
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<Rational> for Time {
    type Output = Time;
    fn mul(self, rhs: Rational) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<Time> for Time {
    type Output = Rational;
    fn div(self, rhs: Time) -> Rational {
        self.ratio(rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl From<i64> for Time {
    fn from(n: i64) -> Self {
        Time::from_int(n)
    }
}

impl From<Rational> for Time {
    fn from(r: Rational) -> Self {
        Time(r)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prefer an exact decimal rendering when the denominator divides a
        // power of ten, else fall back to the fraction.
        let den = self.0.denom();
        if den == 1 {
            return write!(f, "{}", self.0.numer());
        }
        let (mut d, mut twos, mut fives) = (den, 0u32, 0u32);
        while d % 2 == 0 {
            d /= 2;
            twos += 1;
        }
        while d % 5 == 0 {
            d /= 5;
            fives += 1;
        }
        let digits = twos.max(fives);
        if d == 1 && digits <= 30 {
            // value = num/den with den | 10^digits: scale the numerator to
            // an integer count of 10^-digits units (exact in i128).
            let pow10 = 10i128.pow(digits);
            let scaled = self.0.numer().checked_mul(pow10 / den);
            if let Some(scaled) = scaled {
                let sign = if scaled < 0 { "-" } else { "" };
                let mag = scaled.unsigned_abs();
                let int_part = mag / 10u128.pow(digits);
                let frac = mag % 10u128.pow(digits);
                let frac_str = format!("{frac:0width$}", width = digits as usize);
                let frac_str = frac_str.trim_end_matches('0');
                return if frac_str.is_empty() {
                    write!(f, "{sign}{int_part}")
                } else {
                    write!(f, "{sign}{int_part}.{frac_str}")
                };
            }
        }
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Time::from_millis(6, 800), Time::from_ratio(34, 5));
        assert_eq!(Time::from_millis(0, 600), Time::from_ratio(3, 5));
        assert_eq!(Time::from_int(3), Time::from_ratio(6, 2));
        assert_eq!(Time::from_millis(-1, 500), Time::from_ratio(-3, 2));
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(2, 800);
        let b = Time::from_int(2);
        assert_eq!(a + b, Time::from_millis(4, 800));
        assert_eq!(a - b, Time::from_millis(0, 800));
        assert_eq!(b.mul_int(3), Time::from_int(6));
        assert_eq!(Time::from_int(7).div_int(2), Time::from_ratio(7, 2));
    }

    #[test]
    fn ratio_is_exact() {
        let r = Time::from_millis(6, 800).ratio(Time::from_int(2));
        assert_eq!(r, Rational::new(17, 5));
    }

    #[test]
    fn f64_snapping_roundtrip_on_grid() {
        let t = Time::from_f64_snapped(0.5);
        assert_eq!(t, Time::from_ratio(1, 2));
        let u = Time::from_f64_snapped(3.25);
        assert_eq!(u, Time::from_ratio(13, 4));
    }

    #[test]
    fn sum_iterator() {
        let total: Time = [Time::from_int(1), Time::from_millis(0, 500)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ratio(3, 2));
    }

    #[test]
    fn display_decimal_when_exact() {
        assert_eq!(format!("{}", Time::from_millis(6, 800)), "6.8");
        assert_eq!(format!("{}", Time::from_int(15)), "15");
        assert_eq!(format!("{}", Time::from_ratio(1, 3)), "1/3");
        assert_eq!(format!("{}", Time::from_ratio(1, 4)), "0.25");
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(6, 800) > Time::from_int(6));
        assert!(Time::ZERO < Time::ONE);
        assert!(-Time::ONE < Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "thousandths")]
    fn from_millis_validates_range() {
        let _ = Time::from_millis(1, 1000);
    }
}
