//! The [`Time`] type: an exact, totally ordered instant/duration scalar.
//!
//! `Time` is used for every temporal quantity in the workspace: task
//! execution times, schedule start/finish instants, criticalities, category
//! boundaries, areas and makespans. Internally it is a sealed two-variant
//! value — a fixed-point [`Dyadic`] while the value stays on the dyadic
//! grid (the overwhelmingly common case: the paper's category machinery and
//! all generated workloads live on `λ·2^χ` points) and an exact reduced
//! [`Rational`] otherwise. The representation is invisible to callers:
//! construction goes through the canonicalizing constructors below, and
//! comparison, hashing, display and serialization are value-based and
//! byte-identical to the old rational-only representation.
//!
//! # Canonical-representation invariant
//!
//! Every value that *can* be represented as a [`Dyadic`] *is* stored as
//! the dyadic variant. Arithmetic that falls back to rationals re-enters
//! through [`Time::from_rational`], which re-canonicalizes — so equal
//! values always share a variant and derived `PartialEq`/`Eq`/`Hash` on
//! the internal enum are value-correct.

use crate::dyadic::Dyadic;
use crate::rational::Rational;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact instant or duration.
///
/// Arithmetic is exact and checked: the dyadic fast path handles grid
/// values in a couple of integer ops and falls back to reduced-rational
/// arithmetic on overflow or non-dyadic input. Negative values are
/// representable (differences of instants) but task lengths and schedule
/// instants are validated non-negative at their construction sites.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Time {
    repr: Repr,
}

/// The sealed internal representation (see the module docs for the
/// canonical-representation invariant that makes derived equality sound).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    Dyadic(Dyadic),
    Rational(Rational),
}

/// Why an `f64` could not be snapped onto the `Time` grid.
/// Returned by [`Time::try_from_f64_snapped`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SnapError {
    /// The input was NaN or infinite.
    NonFinite,
    /// The snapped magnitude overflows the `2^-20` grid's `i64` mantissa.
    OutOfRange,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::NonFinite => write!(f, "cannot snap a non-finite f64 to Time"),
            SnapError::OutOfRange => write!(f, "f64 value overflows the Time grid"),
        }
    }
}

impl std::error::Error for SnapError {}

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time {
        repr: Repr::Dyadic(Dyadic::ZERO),
    };
    /// One unit of time.
    pub const ONE: Time = Time {
        repr: Repr::Dyadic(Dyadic::ONE),
    };

    /// Creates a `Time` from a rational value, canonicalizing into the
    /// dyadic representation whenever the value lies on the dyadic grid.
    pub const fn from_rational(r: Rational) -> Self {
        match Dyadic::try_from_rational(r) {
            Some(d) => Time {
                repr: Repr::Dyadic(d),
            },
            None => Time {
                repr: Repr::Rational(r),
            },
        }
    }

    /// Creates a `Time` from an integer number of units.
    pub const fn from_int(n: i64) -> Self {
        match Dyadic::try_new(n, 0) {
            Some(d) => Time {
                repr: Repr::Dyadic(d),
            },
            // Unreachable: every i64 is a dyadic with exponent >= 0.
            None => Time::ZERO,
        }
    }

    /// Creates a `Time` equal to `mantissa · 2^exp` — the native form of
    /// the paper's category boundaries `λ·2^χ` (Definition 2).
    ///
    /// # Panics
    /// Panics if the canonical form leaves the representable dyadic range
    /// (`exp < -126`, or the odd mantissa with a positive exponent exceeds
    /// 127 bits).
    pub fn from_dyadic(mantissa: i64, exp: i32) -> Self {
        let d = Dyadic::try_new(mantissa, exp)
            .unwrap_or_else(|| panic!("Time::from_dyadic({mantissa}, {exp}) out of range"));
        Time {
            repr: Repr::Dyadic(d),
        }
    }

    /// Creates a `Time` equal to `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Time::from_rational(Rational::new(num as i128, den as i128))
    }

    /// Creates a `Time` from a decimal written as `int_part.frac` with the
    /// fractional part expressed in thousandths, e.g. `from_millis(6, 800)`
    /// is exactly `6.8`. This is how the paper's example values (6.8, 2.8,
    /// 0.6, …) are constructed without any float rounding.
    pub fn from_millis(int_part: i64, thousandths: i64) -> Self {
        assert!(
            (0..1000).contains(&thousandths),
            "thousandths must be in [0, 1000)"
        );
        let sign = if int_part < 0 { -1 } else { 1 };
        Time::from_rational(Rational::new(
            int_part as i128 * 1000 + sign as i128 * thousandths as i128,
            1000,
        ))
    }

    /// Snaps an `f64` onto the dyadic grid with denominator `2^20`.
    ///
    /// Only used by random workload generators, which sample `f64` and then
    /// commit to the exact snapped value; scheduling itself never touches
    /// floats. Returns a typed [`SnapError`] for NaN/infinite input or
    /// grid overflow.
    pub fn try_from_f64_snapped(x: f64) -> Result<Self, SnapError> {
        if !x.is_finite() {
            return Err(SnapError::NonFinite);
        }
        const GRID: f64 = (1u64 << 20) as f64;
        let scaled = (x * GRID).round();
        if scaled.abs() >= i64::MAX as f64 {
            return Err(SnapError::OutOfRange);
        }
        Ok(Time::from_dyadic(scaled as i64, -20))
    }

    /// The value as an exact rational (converting from the dyadic fast
    /// path representation when needed; the conversion is always exact).
    #[must_use]
    pub const fn rational(&self) -> Rational {
        match self.repr {
            Repr::Dyadic(d) => d.to_rational(),
            Repr::Rational(r) => r,
        }
    }

    /// The value as a dyadic, when it lies on the representable dyadic
    /// grid (by the canonical-representation invariant this is exactly
    /// when the fast-path variant is active).
    #[must_use]
    pub const fn dyadic(&self) -> Option<Dyadic> {
        match self.repr {
            Repr::Dyadic(d) => Some(d),
            Repr::Rational(_) => None,
        }
    }

    /// Approximate `f64` value (reporting only).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.rational().to_f64()
    }

    /// A strictly monotone `u64` key over the on-grid (dyadic-variant)
    /// non-negative times, for radix/calendar priority queues.
    ///
    /// **Monotonicity contract** (see `docs/time.md`): for any two times
    /// `a`, `b` with `a.dyadic_key() == Some(ka)` and `b.dyadic_key() ==
    /// Some(kb)`,
    ///
    /// * `ka < kb ⟺ a < b`, and
    /// * `ka == kb ⟺ a == b` (the key is injective on its coverage).
    ///
    /// Coverage is exactly the non-negative dyadic-grid values whose
    /// canonical mantissa fits 57 bits; everything else — negative
    /// times, rational-variant times, and extreme mantissas — returns
    /// `None`, and callers must fall back to exact [`Time`] ordering.
    /// Because the key is a pure function of the *value* (and every
    /// dyadic-representable value is stored dyadic, per the canonical
    /// invariant), two equal times always agree on `Some`-ness: a keyed
    /// and an unkeyed time are never equal.
    #[must_use]
    pub const fn dyadic_key(&self) -> Option<u64> {
        match self.repr {
            Repr::Dyadic(d) => d.radix_key(),
            Repr::Rational(_) => None,
        }
    }

    /// Returns `true` if this time is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        match self.repr {
            Repr::Dyadic(d) => d.is_zero(),
            Repr::Rational(r) => r.is_zero(),
        }
    }

    /// Returns `true` if this time is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        match self.repr {
            Repr::Dyadic(d) => d.is_positive(),
            Repr::Rational(r) => r.is_positive(),
        }
    }

    /// Returns `true` if this time is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        match self.repr {
            Repr::Dyadic(d) => d.is_negative(),
            Repr::Rational(r) => r.is_negative(),
        }
    }

    /// Minimum of two times.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two times.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Multiplies by an integer (e.g. processor count when computing areas).
    #[must_use]
    pub fn mul_int(self, k: i64) -> Time {
        if let Repr::Dyadic(d) = self.repr {
            if let Some(p) = d.checked_mul_int(k) {
                return Time {
                    repr: Repr::Dyadic(p),
                };
            }
        }
        Time::from_rational(
            self.rational()
                .checked_mul_int(k as i128)
                .expect("Time integer-multiplication overflow"),
        )
    }

    /// Divides by a positive integer (e.g. normalizing an area by `P`).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn div_int(self, k: i64) -> Time {
        if k > 0 && (k as u64).is_power_of_two() {
            if let Repr::Dyadic(d) = self.repr {
                if let Some(q) = d.checked_div_pow2(k.trailing_zeros()) {
                    return Time {
                        repr: Repr::Dyadic(q),
                    };
                }
            }
        }
        Time::from_rational(
            self.rational()
                .checked_div(&Rational::from_int(k))
                .expect("Time integer-division overflow or division by zero"),
        )
    }

    /// Checked addition with a typed error: `Err` when the exact sum's
    /// reduced form exceeds `i128` (see [`crate::OverflowError`]).
    pub fn try_add(self, rhs: Time) -> Result<Time, crate::OverflowError> {
        if let (Repr::Dyadic(a), Repr::Dyadic(b)) = (self.repr, rhs.repr) {
            if let Some(s) = a.checked_add(b) {
                return Ok(Time {
                    repr: Repr::Dyadic(s),
                });
            }
        }
        self.rational()
            .try_add(&rhs.rational())
            .map(Time::from_rational)
    }

    /// Checked integer multiplication with a typed error.
    pub fn try_mul_int(self, k: i64) -> Result<Time, crate::OverflowError> {
        if let Repr::Dyadic(d) = self.repr {
            if let Some(p) = d.checked_mul_int(k) {
                return Ok(Time {
                    repr: Repr::Dyadic(p),
                });
            }
        }
        self.rational()
            .checked_mul_int(k as i128)
            .map(Time::from_rational)
            .ok_or(crate::OverflowError { op: "mul_int" })
    }

    /// Exact ratio of two times, as a `Rational`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[must_use]
    pub fn ratio(self, other: Time) -> Rational {
        self.rational()
            .checked_div(&other.rational())
            .expect("Time ratio overflow or division by zero")
    }
}

impl Default for Time {
    fn default() -> Self {
        Time::ZERO
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Dyadic(a), Repr::Dyadic(b)) => a.cmp(b),
            (Repr::Rational(a), Repr::Rational(b)) => a.cmp(b),
            (Repr::Dyadic(a), Repr::Rational(b)) => cmp_dyadic_rational(a, b),
            (Repr::Rational(a), Repr::Dyadic(b)) => cmp_dyadic_rational(b, a).reverse(),
        }
    }
}

/// Exact mixed-variant comparison with a cheap short-circuit: signs
/// first, then the magnitude-exponent bounds (the rational's magnitude
/// is pinned to a 2-wide window by its numerator/denominator bit
/// lengths), and only when the window overlaps the dyadic's exact
/// magnitude does it promote to the full cross-multiplying rational
/// compare. Mixed pairs are never *equal* (canonical invariant), but
/// the promotion handles that case exactly anyway.
fn cmp_dyadic_rational(d: &Dyadic, r: &Rational) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let ds = d.mantissa().signum() as i32;
    let rs = if r.is_positive() {
        1
    } else if r.is_negative() {
        -1
    } else {
        0
    };
    if ds != rs {
        return ds.cmp(&rs);
    }
    if ds == 0 {
        return Ordering::Equal;
    }
    // |numer| ∈ [2^(bn-1), 2^bn) and denom ∈ [2^(bd-1), 2^bd) bound
    // |r| to (2^(bn-bd-1), 2^(bn-bd+1)): its magnitude exponent is
    // `bn - bd` or `bn - bd + 1`.
    let bn = 128 - r.numer().unsigned_abs().leading_zeros() as i32;
    let bd = 128 - r.denom().unsigned_abs().leading_zeros() as i32;
    let low = bn - bd;
    let md = d.magnitude();
    let abs_order = if md < low {
        // |d| < 2^md <= 2^(low-1)·2 … precisely: md <= low-1 gives
        // |d| < 2^(low-1) < |r|.
        Some(Ordering::Less)
    } else if md > low + 1 {
        // md >= low+2 gives |d| >= 2^(low+1) > |r|.
        Some(Ordering::Greater)
    } else {
        None
    };
    match abs_order {
        Some(o) if ds > 0 => o,
        Some(o) => o.reverse(),
        None => d.to_rational().cmp(r),
    }
}

impl Serialize for Time {
    fn serialize(&self) -> Value {
        // Wire format is the rational `{num, den}` object regardless of
        // the active variant, so journals/baselines stay byte-identical.
        self.rational().serialize()
    }
}

impl Deserialize for Time {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Rational::deserialize(value).map(Time::from_rational)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        if let (Repr::Dyadic(a), Repr::Dyadic(b)) = (self.repr, rhs.repr) {
            if let Some(s) = a.checked_add(b) {
                return Time {
                    repr: Repr::Dyadic(s),
                };
            }
        }
        Time::from_rational(self.rational() + rhs.rational())
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        if let (Repr::Dyadic(a), Repr::Dyadic(b)) = (self.repr, rhs.repr) {
            if let Some(s) = a.checked_sub(b) {
                return Time {
                    repr: Repr::Dyadic(s),
                };
            }
        }
        Time::from_rational(self.rational() - rhs.rational())
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        match self.repr {
            Repr::Dyadic(d) => Time {
                repr: Repr::Dyadic(d.neg()),
            },
            // Negation preserves (non-)dyadic-representability, so the
            // rational variant stays rational.
            Repr::Rational(r) => Time {
                repr: Repr::Rational(-r),
            },
        }
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<Rational> for Time {
    type Output = Time;
    fn mul(self, rhs: Rational) -> Time {
        Time::from_rational(self.rational() * rhs)
    }
}

impl Div<Time> for Time {
    type Output = Rational;
    fn div(self, rhs: Time) -> Rational {
        self.ratio(rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl From<i64> for Time {
    fn from(n: i64) -> Self {
        Time::from_int(n)
    }
}

impl From<Rational> for Time {
    fn from(r: Rational) -> Self {
        Time::from_rational(r)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.rational())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prefer an exact decimal rendering when the denominator divides a
        // power of ten, else fall back to the fraction. Rendering is done
        // on the rational image so both variants print identically.
        let r = self.rational();
        let den = r.denom();
        if den == 1 {
            return write!(f, "{}", r.numer());
        }
        let (mut d, mut twos, mut fives) = (den, 0u32, 0u32);
        while d % 2 == 0 {
            d /= 2;
            twos += 1;
        }
        while d % 5 == 0 {
            d /= 5;
            fives += 1;
        }
        let digits = twos.max(fives);
        if d == 1 && digits <= 30 {
            // value = num/den with den | 10^digits: scale the numerator to
            // an integer count of 10^-digits units (exact in i128).
            let pow10 = 10i128.pow(digits);
            let scaled = r.numer().checked_mul(pow10 / den);
            if let Some(scaled) = scaled {
                let sign = if scaled < 0 { "-" } else { "" };
                let mag = scaled.unsigned_abs();
                let int_part = mag / 10u128.pow(digits);
                let frac = mag % 10u128.pow(digits);
                let frac_str = format!("{frac:0width$}", width = digits as usize);
                let frac_str = frac_str.trim_end_matches('0');
                return if frac_str.is_empty() {
                    write!(f, "{sign}{int_part}")
                } else {
                    write!(f, "{sign}{int_part}.{frac_str}")
                };
            }
        }
        write!(f, "{r}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Time::from_millis(6, 800), Time::from_ratio(34, 5));
        assert_eq!(Time::from_millis(0, 600), Time::from_ratio(3, 5));
        assert_eq!(Time::from_int(3), Time::from_ratio(6, 2));
        assert_eq!(Time::from_millis(-1, 500), Time::from_ratio(-3, 2));
    }

    #[test]
    fn canonical_variant_invariant() {
        // Dyadic-representable values land in the dyadic variant no
        // matter which constructor produced them.
        assert!(Time::from_ratio(1, 2).dyadic().is_some());
        assert!(Time::from_rational(Rational::new(3, 8)).dyadic().is_some());
        assert!(Time::from_millis(1, 500).dyadic().is_some());
        assert!(Time::from_int(7).dyadic().is_some());
        // Non-dyadic values stay rational.
        assert!(Time::from_ratio(1, 3).dyadic().is_none());
        assert!(Time::from_millis(6, 800).dyadic().is_none());
        // Equality and hashing agree across construction routes.
        assert_eq!(Time::from_dyadic(3, -1), Time::from_ratio(3, 2));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |t: Time| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(
            hash(Time::from_dyadic(3, -1)),
            hash(Time::from_ratio(3, 2))
        );
    }

    #[test]
    fn from_dyadic_canonicalizes() {
        assert_eq!(Time::from_dyadic(6, -1), Time::from_int(3));
        assert_eq!(Time::from_dyadic(0, 40), Time::ZERO);
        let d = Time::from_dyadic(5, -3).dyadic().unwrap();
        assert_eq!((d.mantissa(), d.exponent()), (5, -3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_dyadic_rejects_out_of_range() {
        let _ = Time::from_dyadic(1, -127);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(2, 800);
        let b = Time::from_int(2);
        assert_eq!(a + b, Time::from_millis(4, 800));
        assert_eq!(a - b, Time::from_millis(0, 800));
        assert_eq!(b.mul_int(3), Time::from_int(6));
        assert_eq!(Time::from_int(7).div_int(2), Time::from_ratio(7, 2));
    }

    #[test]
    fn mixed_representation_arithmetic() {
        let dy = Time::from_ratio(1, 4); // dyadic
        let ra = Time::from_ratio(1, 3); // rational
        assert_eq!(dy + ra, Time::from_ratio(7, 12));
        assert_eq!(ra + dy, Time::from_ratio(7, 12));
        // A rational-variant computation that lands back on the grid
        // re-canonicalizes into the dyadic variant.
        let back = (dy + ra) - ra;
        assert_eq!(back, dy);
        assert!(back.dyadic().is_some());
    }

    #[test]
    fn div_int_pow2_fast_path_matches_rational() {
        for k in [1i64, 2, 4, 8, 1024] {
            let t = Time::from_ratio(13, 4);
            assert_eq!(
                t.div_int(k),
                Time::from_rational(
                    t.rational().checked_div(&Rational::from_int(k)).unwrap()
                ),
                "k={k}"
            );
        }
        // Non-power-of-two and negative divisors use the rational path.
        assert_eq!(Time::from_int(9).div_int(3), Time::from_int(3));
        assert_eq!(Time::from_int(4).div_int(-2), Time::from_int(-2));
    }

    #[test]
    fn ratio_is_exact() {
        let r = Time::from_millis(6, 800).ratio(Time::from_int(2));
        assert_eq!(r, Rational::new(17, 5));
    }

    #[test]
    fn f64_snapping_roundtrip_on_grid() {
        let t = Time::try_from_f64_snapped(0.5).unwrap();
        assert_eq!(t, Time::from_ratio(1, 2));
        let u = Time::try_from_f64_snapped(3.25).unwrap();
        assert_eq!(u, Time::from_ratio(13, 4));
    }

    #[test]
    fn f64_snapping_reports_typed_errors() {
        assert_eq!(
            Time::try_from_f64_snapped(f64::NAN),
            Err(SnapError::NonFinite)
        );
        assert_eq!(
            Time::try_from_f64_snapped(f64::INFINITY),
            Err(SnapError::NonFinite)
        );
        assert_eq!(
            Time::try_from_f64_snapped(1e30),
            Err(SnapError::OutOfRange)
        );
        let msg = Time::try_from_f64_snapped(f64::NAN).unwrap_err().to_string();
        assert!(msg.contains("non-finite"), "{msg}");
    }

    #[test]
    fn sum_iterator() {
        let total: Time = [Time::from_int(1), Time::from_millis(0, 500)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ratio(3, 2));
    }

    #[test]
    fn display_decimal_when_exact() {
        assert_eq!(format!("{}", Time::from_millis(6, 800)), "6.8");
        assert_eq!(format!("{}", Time::from_int(15)), "15");
        assert_eq!(format!("{}", Time::from_ratio(1, 3)), "1/3");
        assert_eq!(format!("{}", Time::from_ratio(1, 4)), "0.25");
    }

    #[test]
    fn serialization_is_rational_shaped_for_both_variants() {
        let dy = Time::from_ratio(3, 4);
        let ra = Time::from_ratio(1, 3);
        assert!(dy.dyadic().is_some());
        assert!(ra.dyadic().is_none());
        assert_eq!(dy.serialize(), dy.rational().serialize());
        assert_eq!(ra.serialize(), ra.rational().serialize());
        for t in [dy, ra, Time::ZERO, Time::from_int(-7)] {
            let back = Time::deserialize(&t.serialize()).unwrap();
            assert_eq!(back, t);
            assert_eq!(back.dyadic().is_some(), t.dyadic().is_some());
        }
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(6, 800) > Time::from_int(6));
        assert!(Time::ZERO < Time::ONE);
        assert!(-Time::ONE < Time::ZERO);
        // Mixed-variant comparisons are exact.
        assert!(Time::from_ratio(1, 3) < Time::from_ratio(1, 2));
        assert!(Time::from_ratio(2, 3) > Time::from_ratio(1, 2));
    }

    #[test]
    #[should_panic(expected = "thousandths")]
    fn from_millis_validates_range() {
        let _ = Time::from_millis(1, 1000);
    }

    #[test]
    fn dyadic_key_monotone_on_grid() {
        let on_grid = [
            Time::ZERO,
            Time::from_ratio(1, 1 << 20),
            Time::from_ratio(3, 8),
            Time::from_ratio(1, 2),
            Time::ONE,
            Time::from_millis(1, 500),
            Time::from_int(7),
            Time::from_dyadic(1, 60),
            Time::from_dyadic((1 << 56) | 1, -20),
        ];
        for a in on_grid {
            for b in on_grid {
                let (ka, kb) = (a.dyadic_key().unwrap(), b.dyadic_key().unwrap());
                assert_eq!(ka.cmp(&kb), a.cmp(&b), "key order for {a:?} vs {b:?}");
                assert_eq!(ka == kb, a == b, "key injectivity for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn dyadic_key_rejects_off_grid_and_negative() {
        // Rational-variant times have no key.
        assert_eq!(Time::from_ratio(1, 3).dyadic_key(), None);
        assert_eq!(Time::from_millis(6, 800).dyadic_key(), None);
        // Negative times have no key (engine timestamps are
        // non-negative; the overflow heap covers the rest).
        assert_eq!((-Time::ONE).dyadic_key(), None);
        // Oversized mantissas fall back too.
        assert_eq!(Time::from_dyadic((1 << 57) | 1, -20).dyadic_key(), None);
        assert_eq!(Time::ZERO.dyadic_key(), Some(0));
    }

    #[test]
    fn mixed_variant_cmp_matches_exact_promotion() {
        // Pairs chosen to land in every branch of the fast path: sign
        // short-circuit, both magnitude-window short-circuits, and the
        // overlapping-window promotion.
        let dyadics = [
            Time::from_ratio(1, 1024),
            Time::from_ratio(1, 2),
            Time::ONE,
            Time::from_ratio(3, 2),
            Time::from_int(1000),
            -Time::from_ratio(1, 2),
            -Time::from_int(4),
            Time::ZERO,
        ];
        let rationals = [
            Time::from_ratio(1, 3),
            Time::from_ratio(2, 3),
            Time::from_ratio(5, 7),
            Time::from_millis(6, 800),
            Time::from_ratio(999, 1000),
            Time::from_ratio(1001, 1000),
            -Time::from_ratio(1, 3),
            -Time::from_millis(6, 800),
        ];
        for d in dyadics {
            for r in rationals {
                assert!(r.dyadic().is_none(), "{r:?} must be rational-variant");
                let exact = d.rational().cmp(&r.rational());
                assert_eq!(d.cmp(&r), exact, "{d:?} vs {r:?}");
                assert_eq!(r.cmp(&d), exact.reverse(), "{r:?} vs {d:?}");
            }
        }
    }
}
