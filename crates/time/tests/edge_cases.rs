//! Edge-case and serialization tests for the exact time arithmetic.

use rigid_time::{Pow2, Rational, Time};

#[test]
fn serde_roundtrips() {
    let r = Rational::new(34, 5);
    let json = serde_json::to_string(&r).unwrap();
    assert_eq!(serde_json::from_str::<Rational>(&json).unwrap(), r);

    let t = Time::from_millis(6, 800);
    let json = serde_json::to_string(&t).unwrap();
    assert_eq!(serde_json::from_str::<Time>(&json).unwrap(), t);

    let p = Pow2::new(-3);
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(serde_json::from_str::<Pow2>(&json).unwrap(), p);
}

#[test]
fn rational_signs_and_abs() {
    let r = Rational::new(-3, 7);
    assert_eq!(r.signum(), -1);
    assert_eq!(r.abs(), Rational::new(3, 7));
    assert_eq!(Rational::ZERO.signum(), 0);
    assert!(Rational::new(1, 9).is_positive());
    assert!(r.is_negative());
}

#[test]
fn rational_recip_roundtrip() {
    for (n, d) in [(3i128, 4i128), (-7, 2), (1, 1)] {
        let r = Rational::new(n, d);
        assert_eq!(r.recip().recip(), r);
        assert_eq!(r * r.recip(), Rational::ONE);
    }
}

#[test]
fn time_min_max_and_neg() {
    let a = Time::from_ratio(1, 3);
    let b = Time::from_ratio(1, 2);
    assert_eq!(a.min(b), a);
    assert_eq!(a.max(b), b);
    assert_eq!((-a).min(a), -a);
    assert!((-a).is_negative());
}

#[test]
fn pow2_floor_div_negative_time() {
    // floor(-3.5 / 0.5) = -7.
    let p = Pow2::new(-1);
    assert_eq!(p.floor_div(Time::from_ratio(-7, 2)), -7);
    // floor(-3.25 / 0.5) = floor(-6.5) = -7.
    assert_eq!(p.floor_div(Time::from_ratio(-13, 4)), -7);
}

#[test]
fn pow2_extreme_exponents() {
    let big = Pow2::new(100);
    let small = Pow2::new(-100);
    assert!(big.as_time() > Time::from_int(i64::MAX / 2));
    assert!(small.as_time().is_positive());
    assert_eq!(big.halve().exponent(), 99);
    assert_eq!(small.double().exponent(), -99);
}

#[test]
#[should_panic(expected = "out of range")]
fn pow2_exponent_limit() {
    let _ = Pow2::new(127);
}

#[test]
fn sum_of_many_mixed_denominators() {
    // Harmonic-style sum: exact, no drift.
    let total: Time = (1..=50i64).map(|k| Time::from_ratio(1, k)).sum();
    // H_50 ≈ 4.499205; check two exact digits via rational comparison.
    assert!(total > Time::from_ratio(44992, 10000));
    assert!(total < Time::from_ratio(44993, 10000));
}

#[test]
fn display_negative_decimals() {
    assert_eq!(format!("{}", Time::from_ratio(-3, 2)), "-1.5");
    assert_eq!(format!("{}", Time::from_ratio(-1, 8)), "-0.125");
    assert_eq!(format!("{}", Time::from_int(-4)), "-4");
}

#[test]
fn dyadic_grid_sum_stays_dyadic() {
    // Sums of 2^-20-grid values keep power-of-two denominators (the
    // generator fast path).
    let mut acc = Time::ZERO;
    for k in 1..=1000i64 {
        acc += Time::from_ratio(k, 1 << 20);
    }
    let den = acc.rational().denom();
    assert_eq!(den & (den - 1), 0, "denominator {den} not a power of two");
}

#[test]
fn parse_time_whitespace_and_signs() {
    assert_eq!("  -7/2 ".parse::<Time>().unwrap(), Time::from_ratio(-7, 2));
    assert_eq!("-0.25".parse::<Time>().unwrap(), Time::from_ratio(-1, 4));
}

#[test]
fn ratio_of_times() {
    let a = Time::from_millis(6, 800);
    let b = Time::from_millis(3, 400);
    assert_eq!(a.ratio(b), Rational::from_int(2));
    assert_eq!(a / b, Rational::from_int(2));
}
