//! The adversarial story of the paper, end to end.
//!
//! Act 1 (Figure 1): ASAP heuristics collapse to Θ(P) on a trivial
//! released-on-the-fly gadget, while CatBatch's strategic waiting keeps
//! it near the optimum.
//!
//! Act 2 (Section 6): the adaptive adversary `Z^Alg_P(K)` stalks *any*
//! online scheduler — including CatBatch — and forces the Ω(log n) /
//! Ω(P) gaps of Theorems 3–4, certified against the offline witness
//! schedule of Lemma 11.
//!
//! ```text
//! cargo run -p catbatch-examples --release --bin adversarial
//! ```

use catbatch::CatBatch;
use rigid_baselines::asap;
use rigid_dag::paper::intro_example;
use rigid_dag::{analysis, StaticSource};
use rigid_lowerbounds::chains::GadgetParams;
use rigid_lowerbounds::zgraph::{lemma10_bound, lemma11_bound, ZAdversary};
use rigid_sim::engine;
use rigid_time::Time;

fn main() {
    println!("== Act 1: the ASAP trap (paper Figure 1) ==");
    let p = 16u32;
    let eps = Time::from_ratio(1, 100);
    let instance = intro_example(p, eps);
    let lb = analysis::lower_bound(&instance);

    let asap_run = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), &mut asap());
    let cb_run = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), &mut CatBatch::new());
    asap_run.schedule.assert_valid(&instance);
    cb_run.schedule.assert_valid(&instance);

    println!("P = {p}, n = {}, Lb = {lb}", instance.len());
    println!(
        "ASAP list scheduling : makespan {} (ratio {:.2} — grows with P!)",
        asap_run.makespan(),
        asap_run.makespan().ratio(lb).to_f64()
    );
    println!(
        "CatBatch             : makespan {} (ratio {:.2})",
        cb_run.makespan(),
        cb_run.makespan().ratio(lb).to_f64()
    );
    println!(
        "CatBatch holds the long unit tasks back until the ε-ladder drains —\n\
         the deliberate idling that ASAP rules out.\n"
    );

    println!("== Act 2: the adaptive adversary Z^Alg_P(K) (paper Section 6) ==");
    let params = GadgetParams::new(5, 2, Time::from_ratio(1, 80));
    for (name, mut sched) in [
        ("asap", Box::new(asap()) as Box<dyn rigid_sim::OnlineScheduler>),
        ("catbatch", Box::new(CatBatch::new())),
    ] {
        let mut adversary = ZAdversary::new(params);
        let result = engine::EngineConfig::new().run(&mut adversary, sched.as_mut());
        let committed = adversary.committed_instance();
        result.schedule.assert_valid(&committed);
        let witness = adversary.witness_schedule();
        witness.assert_valid(&committed);
        println!(
            "{name:<9}: T = {} (≥ Lemma 10 bound {}), offline witness = {} (< Lemma 11 bound {}), gap ×{:.2}",
            result.makespan(),
            lemma10_bound(&params),
            witness.makespan(),
            lemma11_bound(&params),
            result.makespan().ratio(witness.makespan()).to_f64()
        );
    }
    println!(
        "\nThe adversary only decides the graph as it watches the run: whichever\n\
         task an algorithm finishes last becomes the gate to the next layer. No\n\
         online algorithm escapes — that is the Θ(log n) lower bound, and it is\n\
         why CatBatch's log2(n)+3 guarantee is near-optimal."
    );
}
