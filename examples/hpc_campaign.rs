//! An HPC campaign scenario: a batch of heterogeneous simulation
//! pipelines lands on a 64-processor partition, and the scheduler only
//! learns about each stage when its inputs are ready.
//!
//! The workload mirrors the structure the paper's introduction motivates:
//! mixed rigid jobs (wide solvers, narrow pre/post steps) under
//! precedence, with task lengths spread across two orders of magnitude —
//! the regime where the `log(M/m)` guarantee matters.
//!
//! ```text
//! cargo run -p catbatch-examples --release --bin hpc_campaign
//! ```

use catbatch::CatBatch;
use rigid_baselines::{ListScheduler, Priority};
use rigid_dag::gen::{fork_join, layered, LengthDist, ProcDist, TaskSampler};
use rigid_dag::{analysis, Instance, StaticSource};
use rigid_sim::{engine, metrics, OnlineScheduler};

const PROCS: u32 = 64;

fn run(instance: &Instance, scheduler: &mut dyn OnlineScheduler) -> (String, f64, f64) {
    let name = scheduler.name().to_string();
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), scheduler);
    result.schedule.assert_valid(instance);
    let m = metrics::metrics(&result.schedule, instance);
    (name, m.ratio_to_lb.to_f64(), m.avg_utilization)
}

fn main() {
    // Campaign A: deep layered workflow (simulation stages, stage-to-
    // stage dependencies), log-uniform lengths in [0.1, 20].
    let stages = TaskSampler {
        length: LengthDist::LogUniform {
            min: 0.1,
            max: 20.0,
        },
        procs: ProcDist::PowersOfTwo,
    };
    let campaign_a = layered(2024, 24, 18, &stages, PROCS);

    // Campaign B: ensemble of fork–join pipelines (uncertainty
    // quantification sweeps) with a cap of a quarter of the machine per
    // member.
    let members = TaskSampler {
        length: LengthDist::Uniform { min: 0.5, max: 6.0 },
        procs: ProcDist::FractionCap { q: 0.25 },
    };
    let campaign_b = fork_join(2025, 20, 24, &members, PROCS);

    for (title, instance) in [("Campaign A (layered)", campaign_a), ("Campaign B (fork-join)", campaign_b)] {
        let stats = analysis::stats(&instance);
        let mm = stats
            .length_ratio()
            .expect("campaign instances are non-empty with positive lengths");
        println!("== {title} ==");
        println!(
            "n = {}, P = {}, M/m = {:.1}, Lb = {:.2}",
            stats.n,
            stats.procs,
            mm,
            stats.lower_bound.to_f64()
        );
        println!(
            "Theorem 1 bound: {:.2}; Theorem 2 bound: {:.2}",
            (stats.n as f64).log2() + 3.0,
            mm.log2() + 6.0
        );
        println!("{:<22} {:>8} {:>12}", "scheduler", "ratio", "utilization");
        let (name, ratio, util) = run(&instance, &mut CatBatch::new());
        println!("{name:<22} {ratio:>8.3} {:>11.1}%", util * 100.0);
        for priority in [Priority::Fifo, Priority::LongestFirst, Priority::MostProcsFirst] {
            let (name, ratio, util) = run(&instance, &mut ListScheduler::new(priority));
            println!("{name:<22} {ratio:>8.3} {:>11.1}%", util * 100.0);
        }
        println!();
    }

    println!(
        "CatBatch's ratios sit far below its worst-case guarantee on benign\n\
         workloads, while staying immune to the adversarial collapses that hit\n\
         ASAP list scheduling (see the `adversarial` example)."
    );
}
