//! The Section 7 moldable extension in action: an uncertainty-
//! quantification pipeline whose solver tasks can run on any number of
//! processors, scheduled online with local allocation + CatBatch.
//!
//! ```text
//! cargo run -p catbatch-examples --bin moldable_pipeline
//! ```

use rigid_moldable::{schedule_online, AllocRule, InnerSched, MoldableBuilder, SpeedupModel};
use rigid_time::{Rational, Time};

fn main() {
    // Build a three-stage ensemble pipeline on 16 processors:
    // ingest → {8 ensemble members: solver → reduce} → publish.
    let mut b = MoldableBuilder::new();
    let ingest = b.task(SpeedupModel::Amdahl {
        work: Time::from_int(4),
        seq_fraction: Rational::new(3, 4), // mostly sequential I/O
    });
    let publish = b.task(SpeedupModel::Amdahl {
        work: Time::from_int(2),
        seq_fraction: Rational::ONE,
    });
    for k in 0..8u32 {
        let solver = b.task(SpeedupModel::Roofline {
            work: Time::from_int(24 + k as i64),
            max_par: 8, // stops scaling at 8 processors
        });
        let reduce = b.task(SpeedupModel::Communication {
            work: Time::from_int(6),
            overhead: Time::from_ratio(1, 4), // all-to-all cost per rank
        });
        b.edge(ingest, solver);
        b.edge(solver, reduce);
        b.edge(reduce, publish);
    }
    let instance = b.build(16);

    println!(
        "Moldable pipeline: {} tasks on P = {}; moldable lower bound = {}",
        instance.len(),
        instance.procs(),
        instance.lower_bound()
    );
    println!();
    println!(
        "{:<16} {:<10} {:>10} {:>22}",
        "allocation", "inner", "makespan", "ratio to moldable LB"
    );
    for rule in [AllocRule::MinTime, AllocRule::HalfEfficient, AllocRule::Sequential] {
        for inner in [InnerSched::CatBatch, InnerSched::Backfill, InnerSched::Asap] {
            let run = schedule_online(&instance, rule, inner);
            println!(
                "{:<16} {:<10} {:>10} {:>22.3}",
                rule.name(),
                inner.name(),
                format!("{}", run.run.makespan()),
                run.ratio_to_moldable_lb
            );
        }
    }
    println!();

    // Show what the allocator chose for one solver under each rule.
    let min_time = AllocRule::MinTime.allocate_all(&instance);
    let efficient = AllocRule::HalfEfficient.allocate_all(&instance);
    println!("Allocation choices for solver #2 (roofline, max_par = 8):");
    println!("  min-time       → {} processors", min_time[2]);
    println!("  half-efficient → {} processors", efficient[2]);
    println!(
        "\nThe allocation decision is local (each task's own speedup curve) and\n\
         online; the category machinery then schedules the resulting rigid\n\
         tasks exactly as in the paper — §7's proposed direction, running."
    );
}
