//! Operating CatBatch in production: live guarantee monitoring, event
//! traces, and concrete processor assignment.
//!
//! The online model means nobody knows the final instance mid-run — but
//! the theory still certifies bounds over the *revealed* prefix. This
//! example wires a [`GuaranteeMonitor`] into a CatBatch run, prints the
//! evolving certified bound, then exports the run as a JSON trace and
//! maps every task to concrete processor indices.
//!
//! ```text
//! cargo run -p catbatch-examples --bin monitoring
//! ```

use catbatch::{CatBatch, GuaranteeMonitor};
use rigid_dag::gen::{layered, TaskSampler};
use rigid_dag::{ReleasedTask, StaticSource, TaskId};
use rigid_sim::trace::Trace;
use rigid_sim::{assign, engine, OnlineScheduler};
use rigid_time::Time;

/// CatBatch with a monitor attached; snapshots the certified bound at
/// every release.
struct MonitoredCatBatch {
    inner: CatBatch,
    monitor: GuaranteeMonitor,
    snapshots: Vec<(usize, Time, f64)>, // (revealed n, conditional bound, ratio guarantee)
}

impl OnlineScheduler for MonitoredCatBatch {
    fn name(&self) -> &'static str {
        "monitored-catbatch"
    }
    fn on_release(&mut self, task: &ReleasedTask, now: Time) {
        self.monitor.on_release(task);
        self.snapshots.push((
            self.monitor.revealed_tasks(),
            self.monitor.conditional_makespan_bound().expect("released"),
            self.monitor.ratio_guarantee(),
        ));
        self.inner.on_release(task, now);
    }
    fn on_complete(&mut self, task: TaskId, now: Time) {
        self.inner.on_complete(task, now);
    }
    fn decide(&mut self, now: Time, free: u32) -> Vec<TaskId> {
        self.inner.decide(now, free)
    }
}

fn main() {
    let instance = layered(99, 8, 6, &TaskSampler::default_mix(), 8);
    let mut sched = MonitoredCatBatch {
        inner: CatBatch::new(),
        monitor: GuaranteeMonitor::new(instance.procs()),
        snapshots: Vec::new(),
    };
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), &mut sched);
    result.schedule.assert_valid(&instance);

    println!("Certified bound as the instance reveals itself:");
    println!(
        "{:>10} {:>22} {:>18}",
        "revealed n", "conditional makespan ≤", "ratio ≤ log2(n)+3"
    );
    // Print every few snapshots to keep the output short.
    let step = (sched.snapshots.len() / 8).max(1);
    for snap in sched.snapshots.iter().step_by(step) {
        println!("{:>10} {:>22.3} {:>18.3}", snap.0, snap.1.to_f64(), snap.2);
    }
    let final_bound = sched.monitor.conditional_makespan_bound().unwrap();
    println!(
        "\nfinal certified bound : {final_bound} (actual makespan {} — bound holds: {})",
        result.makespan(),
        result.makespan() <= final_bound,
    );
    assert!(result.makespan() <= final_bound);

    // The certified bound is monotone-usable at any prefix: it never
    // undershoots what the revealed work alone would require.
    println!(
        "batches formed        : {}",
        sched.monitor.revealed_categories()
    );

    // Export the run as a JSON event trace (for plotting/replay).
    let trace = Trace::from_run(&result);
    assert!(trace.is_causal());
    println!(
        "trace                 : {} events; first = {:?}",
        trace.len(),
        trace.events().first().unwrap()
    );

    // Map counts to concrete processor indices (deployment view).
    let assignment = assign::assign(&result.schedule);
    assert!(assignment.validate(&result.schedule));
    let sample = result.schedule.placements().next().unwrap();
    println!(
        "assignment            : task {} runs on processors {:?}",
        sample.task,
        assignment.processors(sample.task).unwrap()
    );
}
