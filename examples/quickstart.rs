//! Quickstart: build a task graph, schedule it online with CatBatch, and
//! inspect the result.
//!
//! ```text
//! cargo run -p catbatch-examples --bin quickstart
//! ```

use catbatch::CatBatch;
use rigid_dag::{DagBuilder, StaticSource};
use rigid_sim::gantt::{render, GanttOptions};
use rigid_sim::{engine, metrics};
use rigid_time::Time;

fn main() {
    // A small scientific workflow: preprocessing fans out into three
    // solvers of different widths, which join into a postprocessing step.
    // Times are exact rationals — from_millis(2, 500) is exactly 2.5.
    let instance = DagBuilder::new()
        .task("ingest", Time::from_millis(1, 0), 2)
        .task("mesh", Time::from_millis(2, 500), 4)
        .task("solve-a", Time::from_millis(4, 0), 4)
        .task("solve-b", Time::from_millis(3, 0), 2)
        .task("solve-c", Time::from_millis(5, 0), 1)
        .task("reduce", Time::from_millis(1, 500), 8)
        .task("render", Time::from_millis(2, 0), 1)
        .edge("ingest", "mesh")
        .edge("mesh", "solve-a")
        .edge("mesh", "solve-b")
        .edge("mesh", "solve-c")
        .edge("solve-a", "reduce")
        .edge("solve-b", "reduce")
        .edge("solve-c", "reduce")
        .edge("reduce", "render")
        .build(8); // 8 identical processors

    // The engine reveals tasks online (a task is invisible until all its
    // predecessors complete); CatBatch schedules them in category batches.
    let mut scheduler = CatBatch::new();
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), &mut scheduler);
    result.schedule.assert_valid(&instance);

    println!("Schedule (CatBatch, P = {}):", instance.procs());
    println!(
        "{}",
        render(
            &result.schedule,
            instance.graph(),
            &GanttOptions {
                width: 72,
                labels: true
            }
        )
    );

    // The batches CatBatch formed, in category order.
    println!("Batches (category ζ → tasks):");
    for batch in scheduler.batch_history() {
        let labels: Vec<&str> = batch
            .tasks
            .iter()
            .map(|&id| instance.graph().spec(id).label_str())
            .collect();
        println!(
            "  ζ = {:<5} [{} → {}]  {}",
            format!("{}", batch.category.value()),
            batch.started_at,
            batch.finished_at,
            labels.join(", ")
        );
    }

    // Quality: compare against the Graham lower bound and the Theorem 1
    // guarantee.
    let m = metrics::metrics(&result.schedule, &instance);
    let bound = (instance.len() as f64).log2() + 3.0;
    println!();
    println!("makespan       : {}", m.makespan);
    println!("lower bound Lb : {}", m.lower_bound);
    println!(
        "ratio          : {:.3} (Theorem 1 guarantees ≤ log2(n)+3 = {:.3})",
        m.ratio_to_lb.to_f64(),
        bound
    );
    println!("avg utilization: {:.1}%", m.avg_utilization * 100.0);
    assert!(m.ratio_to_lb.to_f64() <= bound);
}
