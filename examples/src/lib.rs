//! Runnable examples for the `catbatch` workspace (see the `[[bin]]`
//! targets: `quickstart`, `hpc_campaign`, `adversarial`, `strip_packing`).
