//! Online strip packing with precedence constraints (the paper's
//! Remark 1): CatBatch-Strip commits every task to a **contiguous**
//! processor interval `[x, x+w)` while keeping the category-batch
//! structure and its competitive guarantee.
//!
//! ```text
//! cargo run -p catbatch-examples --bin strip_packing
//! ```

use rigid_dag::{analysis, paper, StaticSource};
use rigid_sim::engine;
use rigid_strip::CatBatchStrip;

fn main() {
    // The paper's Figure 3 example on P = 4 processors.
    let instance = paper::figure3();
    let mut strip = CatBatchStrip::new(instance.procs());
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(instance.clone()), &mut strip);

    // Both views must be feasible: the schedule (capacity + precedence)
    // and the packing (geometric non-overlap + contiguity).
    result.schedule.assert_valid(&instance);
    strip.packing().assert_valid();

    println!("CatBatch-Strip on the paper's 11-task example (strip width P = 4):");
    println!("{:<6} {:>10} {:>8} {:>10} {:>8}", "task", "x..x+w", "width", "y (start)", "height");
    let mut rects: Vec<_> = strip.packing().rects().to_vec();
    rects.sort_by_key(|r| (r.y, r.x));
    for r in &rects {
        println!(
            "{:<6} {:>10} {:>8} {:>10} {:>8}",
            instance.graph().spec(r.id).label_str(),
            format!("{}..{}", r.x, r.x_end()),
            r.width,
            format!("{}", r.y),
            format!("{}", r.height),
        );
    }

    let lb = analysis::lower_bound(&instance);
    println!();
    println!("strip height : {}", strip.packing().height());
    println!("lower bound  : {lb}");
    println!(
        "ratio        : {:.3} (contiguity costs only the NFDH constant per batch)",
        strip.packing().height().ratio(lb).to_f64()
    );
}
