//! Integration tests of the adaptive adversary against every scheduler
//! in the workspace.

use catbatch::CatBatch;
use rigid_baselines::{ListScheduler, Priority};
use rigid_lowerbounds::chains::GadgetParams;
use rigid_lowerbounds::theorems::{theorem3_params, theorem4_params};
use rigid_lowerbounds::zgraph::{lemma10_bound, lemma11_bound, ZAdversary};
use rigid_sim::{engine, OnlineScheduler};
use rigid_time::Time;

fn all_schedulers() -> Vec<Box<dyn OnlineScheduler>> {
    let mut v: Vec<Box<dyn OnlineScheduler>> = vec![Box::new(CatBatch::new())];
    for p in Priority::ALL {
        v.push(Box::new(ListScheduler::new(p)));
    }
    v
}

/// Lemma 10 holds for every scheduler: the adversary adapts to each.
#[test]
fn lemma10_for_every_scheduler() {
    let params = GadgetParams::new(4, 2, Time::from_ratio(1, 64));
    for mut sched in all_schedulers() {
        let mut adv = ZAdversary::new(params);
        let result = engine::EngineConfig::new().run(&mut adv, sched.as_mut());
        let inst = adv.committed_instance();
        result.schedule.assert_valid(&inst);
        assert!(
            result.makespan() >= lemma10_bound(&params),
            "{} beat Lemma 10",
            sched.name()
        );
        // The committed graph has the right size.
        assert_eq!(inst.len(), adv.task_count());
    }
}

/// The witness schedule is feasible and below Lemma 11 regardless of
/// which scheduler shaped the instance.
#[test]
fn witness_below_lemma11_for_every_scheduler() {
    let params = GadgetParams::new(3, 3, Time::from_ratio(1, 48));
    for mut sched in all_schedulers() {
        let mut adv = ZAdversary::new(params);
        let _ = engine::EngineConfig::new().run(&mut adv, sched.as_mut());
        let witness = adv.witness_schedule();
        witness.assert_valid(&adv.committed_instance());
        assert!(
            witness.makespan() < lemma11_bound(&params),
            "{}: witness too tall",
            sched.name()
        );
    }
}

/// Theorem 3 parameters drive a growing gap; Theorem 4 parameters force
/// ratio > P/2 − μ (checked at P=3 for speed).
#[test]
fn theorem_parameter_recipes() {
    // Theorem 3 shape at P = 4.
    let params3 = theorem3_params(4);
    let mut adv = ZAdversary::new(params3);
    let mut asap = rigid_baselines::asap();
    let result = engine::EngineConfig::new().run(&mut adv, &mut asap);
    let witness = adv.witness_schedule();
    let ratio = result.makespan().ratio(witness.makespan()).to_f64();
    let floor = lemma10_bound(&params3)
        .ratio(lemma11_bound(&params3))
        .to_f64();
    assert!(ratio > floor);

    // Theorem 4 at P = 3, μ = 0.5.
    let params4 = theorem4_params(3, 0.5);
    let mut adv = ZAdversary::new(params4);
    let mut asap = rigid_baselines::asap();
    let result = engine::EngineConfig::new().run(&mut adv, &mut asap);
    let witness = adv.witness_schedule();
    witness.assert_valid(&adv.committed_instance());
    let ratio = result.makespan().ratio(witness.makespan()).to_f64();
    assert!(ratio > 3.0 / 2.0 - 0.5, "Theorem 4 check failed: {ratio}");
}

/// Scaled-down adversaries (fewer layers than P) still behave: each
/// layer completes before the next is revealed.
#[test]
fn reduced_layer_adversary() {
    let params = GadgetParams::new(4, 2, Time::from_ratio(1, 64));
    let mut adv = ZAdversary::with_layers(params, 2);
    let mut cb = CatBatch::new();
    let result = engine::EngineConfig::new().run(&mut adv, &mut cb);
    let inst = adv.committed_instance();
    result.schedule.assert_valid(&inst);
    assert_eq!(adv.pivots().len(), 2);
    // Layer-1 heads all start after the layer-0 pivot completes.
    let pivot0 = adv.pivots()[0];
    let pivot_finish = result.schedule.placement(pivot0).unwrap().finish;
    for id in inst.graph().task_ids() {
        if inst.graph().preds(id).contains(&pivot0) {
            assert!(result.schedule.placement(id).unwrap().start >= pivot_finish);
        }
    }
}

/// The adversary is deterministic for a deterministic scheduler: two
/// runs against fresh CatBatch instances commit identical graphs.
#[test]
fn adversary_deterministic_per_scheduler() {
    let params = GadgetParams::new(3, 2, Time::from_ratio(1, 48));
    let run = || {
        let mut adv = ZAdversary::new(params);
        let mut cb = CatBatch::new();
        let result = engine::EngineConfig::new().run(&mut adv, &mut cb);
        (result.makespan(), adv.pivots().to_vec())
    };
    let (m1, p1) = run();
    let (m2, p2) = run();
    assert_eq!(m1, m2);
    assert_eq!(p1, p2);
}
