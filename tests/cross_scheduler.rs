//! Every scheduler × every workload family: feasibility, bounds
//! ordering, and metric sanity.

use catbatch::CatBatch;
use rigid_baselines::{asap, ListScheduler, OfflineBatch, Optimal, Priority, ShelfScheduler};
use rigid_dag::gen::{family, independent, TaskSampler};
use rigid_dag::{analysis, StaticSource};
use rigid_sim::offline::run_offline;
use rigid_sim::{engine, metrics};
use rigid_strip::CatBatchStrip;

/// All online schedulers complete all families feasibly.
#[test]
fn online_schedulers_feasible_everywhere() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..3u64 {
        for (name, inst) in family(seed, 60, &sampler, 8) {
            // CatBatch.
            let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
            r.schedule.assert_valid(&inst);
            // Strip.
            let mut cbs = CatBatchStrip::new(inst.procs());
            let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
            r.schedule.assert_valid(&inst);
            cbs.packing().assert_valid();
            // Every list policy.
            for p in Priority::ALL {
                let r = engine::EngineConfig::new().run(
                    &mut StaticSource::new(inst.clone()),
                    &mut ListScheduler::new(p),
                );
                r.schedule.assert_valid(&inst);
            }
            // Offline batch (both packings).
            run_offline(&mut OfflineBatch::greedy(), &inst);
            run_offline(&mut OfflineBatch::nfdh(), &inst);
            let _ = name;
        }
    }
}

/// Ordering: Lb ≤ OPT ≤ every heuristic, on small instances.
#[test]
fn bound_ordering_chain() {
    for seed in 0..8u64 {
        let inst = rigid_dag::gen::erdos_dag(seed, 6, 0.3, &TaskSampler::default_mix(), 3);
        let lb = analysis::lower_bound(&inst);
        let opt = Optimal::default().makespan(&inst);
        assert!(lb <= opt);
        let cb = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        let greedy = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut asap());
        assert!(opt <= cb.makespan());
        assert!(opt <= greedy.makespan());
    }
}

/// Metrics are self-consistent: busy + idle area = P × makespan, ratio
/// ≥ 1.
#[test]
fn metrics_consistency() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..4u64 {
        let inst = rigid_dag::gen::layered(seed, 6, 6, &sampler, 8);
        let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        let m = metrics::metrics(&r.schedule, &inst);
        assert_eq!(
            m.busy_area + m.idle_area,
            m.makespan.mul_int(inst.procs() as i64)
        );
        assert!(m.ratio_to_lb.to_f64() >= 1.0 - 1e-12);
        assert!(m.avg_utilization > 0.0 && m.avg_utilization <= 1.0);
    }
}

/// Shelf schedulers vs CatBatch on independent tasks: CatBatch puts all
/// independent tasks in few batches and stays competitive with the
/// dedicated shelf algorithms.
#[test]
fn independent_task_shootout() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..4u64 {
        let inst = independent(seed, 50, &sampler, 8);
        let lb = analysis::lower_bound(&inst);
        let nfdh = run_offline(&mut ShelfScheduler::nfdh(), &inst).makespan();
        let cb = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new())
            .makespan();
        assert!(nfdh.ratio(lb).to_f64() <= 3.0 + 1e-9);
        // CatBatch is 2A/P + max-length competitive on one batch of
        // independents — comfortably within 3×Lb as well.
        assert!(cb.ratio(lb).to_f64() <= 3.0 + 1e-9, "seed {seed}");
    }
}

/// The engine's decision counter and release bookkeeping are sane.
#[test]
fn run_result_bookkeeping() {
    let inst = rigid_dag::gen::fork_join(1, 5, 6, &TaskSampler::default_mix(), 8);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
    assert_eq!(r.release_times.len(), inst.len());
    assert_eq!(r.revealed.len(), inst.len());
    assert_eq!(r.revealed.edge_count(), inst.graph().edge_count());
    assert!(r.decisions > 0);
    assert_eq!(r.procs, 8);
    // Every release happens no later than the task starts.
    for p in r.schedule.placements() {
        assert!(r.release_times[&p.task] <= p.start);
    }
}
