//! Property-based end-to-end tests across the whole stack.

use catbatch::analysis::decompose;
use catbatch::CatBatch;
use proptest::prelude::*;
use rigid_dag::gen::{erdos_dag, layered, LengthDist, ProcDist, TaskSampler};
use rigid_dag::{analysis, StaticSource};
use rigid_sim::engine;

fn sampler() -> TaskSampler {
    TaskSampler {
        length: LengthDist::Uniform { min: 0.25, max: 8.0 },
        procs: ProcDist::PowersOfTwo,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The online CatBatch run forms exactly the batches the offline
    /// category decomposition predicts — same categories, same members.
    #[test]
    fn online_batches_equal_offline_decomposition(
        seed in 0u64..10_000, n in 1usize..35, p in 1u32..9
    ) {
        let inst = erdos_dag(seed, n, 0.2, &sampler(), p);
        let mut cb = CatBatch::new();
        let _ = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cb);
        let offline = decompose(&inst);
        prop_assert_eq!(offline.batch_count(), cb.batch_history().len());
        for (offline_entry, online) in offline.categories.iter().zip(cb.batch_history()) {
            prop_assert_eq!(*offline_entry.0, online.category);
            let mut a: Vec<_> = offline_entry.1.clone();
            let mut b = online.tasks.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// Lemma 5 observed at run time: a task's category strictly exceeds
    /// every predecessor's category.
    #[test]
    fn lemma5_along_edges(seed in 0u64..10_000, n in 2usize..35) {
        let inst = layered(seed, 5, (n / 5).max(1), &sampler(), 8);
        let table = catbatch::analysis::attribute_table(&inst);
        for id in inst.graph().task_ids() {
            for &pred in inst.graph().preds(id) {
                prop_assert!(
                    table[pred.index()].category < table[id.index()].category,
                    "edge {pred} -> {id}"
                );
            }
        }
    }

    /// Release instants equal the max predecessor finish in the actual
    /// schedule (the engine releases exactly when the model says).
    #[test]
    fn release_times_match_model(seed in 0u64..10_000, n in 1usize..30) {
        let inst = erdos_dag(seed, n, 0.25, &sampler(), 8);
        let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        for id in inst.graph().task_ids() {
            let expected = inst
                .graph()
                .preds(id)
                .iter()
                .map(|&q| r.schedule.placement(q).unwrap().finish)
                .max()
                .unwrap_or(rigid_time::Time::ZERO);
            prop_assert_eq!(r.release_times[&id], expected);
        }
    }

    /// Determinism: the same instance scheduled twice gives identical
    /// schedules.
    #[test]
    fn engine_is_deterministic(seed in 0u64..10_000, n in 1usize..30) {
        let inst = erdos_dag(seed, n, 0.2, &sampler(), 4);
        let r1 = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        let r2 = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        for id in inst.graph().task_ids() {
            prop_assert_eq!(
                r1.schedule.placement(id).unwrap().start,
                r2.schedule.placement(id).unwrap().start
            );
        }
    }

    /// The Theorem 1 bound certified against Lb holds on every drawn
    /// instance (belt and braces at the integration level).
    #[test]
    fn theorem1_integration(seed in 0u64..10_000, n in 1usize..60, p in 1u32..17) {
        let inst = erdos_dag(seed, n, 0.15, &sampler(), p);
        let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
        r.schedule.assert_valid(&inst);
        let ratio = r.makespan().ratio(analysis::lower_bound(&inst)).to_f64();
        prop_assert!(ratio <= (n as f64).log2() + 3.0 + 1e-9);
    }
}
