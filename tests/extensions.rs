//! Integration tests for the post-paper extensions: §7 heuristics under
//! adversarial pressure, strip scheduling vs the adaptive adversary, the
//! `.rigid` format across crates, and wavefront workloads end to end.

use catbatch::{CatBatch, CatBatchBackfill, CatPrio, EstimatedCatBatch};
use rigid_dag::gen::{wavefront_2d, wavefront_triangular, TaskSampler};
use rigid_dag::{analysis, format, StaticSource};
use rigid_lowerbounds::chains::GadgetParams;
use rigid_lowerbounds::zgraph::{lemma10_bound, ZAdversary};
use rigid_sim::{engine, OnlineScheduler};
use rigid_strip::CatBatchStrip;
use rigid_time::Time;

/// The adaptive adversary also binds the new heuristics and the strip
/// variant — they are online algorithms, so Lemma 10 applies.
#[test]
fn adversary_binds_extensions() {
    let params = GadgetParams::new(3, 2, Time::from_ratio(1, 48));
    let schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(CatBatchBackfill::new()),
        Box::new(CatPrio::new()),
        Box::new(EstimatedCatBatch::new(15, 3)),
        Box::new(CatBatchStrip::new(3)),
    ];
    for mut sched in schedulers {
        let mut adv = ZAdversary::new(params);
        let result = engine::EngineConfig::new().run(&mut adv, sched.as_mut());
        let inst = adv.committed_instance();
        result.schedule.assert_valid(&inst);
        assert!(
            result.makespan() >= lemma10_bound(&params),
            "{} beat Lemma 10 — impossible",
            sched.name()
        );
    }
}

/// Backfilling keeps the Theorem 1 guarantee even against the adversary
/// (same Lemma 7 argument as plain CatBatch).
#[test]
fn backfill_guarantee_against_adversary() {
    let params = GadgetParams::new(4, 2, Time::from_ratio(1, 64));
    let mut adv = ZAdversary::new(params);
    let mut bf = CatBatchBackfill::new();
    let result = engine::EngineConfig::new().run(&mut adv, &mut bf);
    let inst = adv.committed_instance();
    result.schedule.assert_valid(&inst);
    let ratio = result
        .makespan()
        .ratio(analysis::lower_bound(&inst))
        .to_f64();
    assert!(ratio <= (inst.len() as f64).log2() + 3.0 + 1e-9);
}

/// Wavefront workloads run feasibly through every paper-side scheduler
/// and respect the Theorem 1 bound.
#[test]
fn wavefronts_end_to_end() {
    let sampler = TaskSampler::default_mix();
    for inst in [
        wavefront_2d(5, 8, 8, &sampler, 8),
        wavefront_triangular(5, 10, &sampler, 8),
    ] {
        let bound = (inst.len() as f64).log2() + 3.0;
        for mut sched in [
            Box::new(CatBatch::new()) as Box<dyn OnlineScheduler>,
            Box::new(CatBatchBackfill::new()),
        ] {
            let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), sched.as_mut());
            r.schedule.assert_valid(&inst);
            let ratio = r.makespan().ratio(analysis::lower_bound(&inst)).to_f64();
            assert!(ratio <= bound + 1e-9);
        }
        // Peak ideal parallelism of a w×w wavefront is about w.
        let peak = analysis::peak_width(inst.graph());
        assert!(peak >= 1);
    }
}

/// The `.rigid` format round-trips paper gadgets exactly and the parsed
/// instance schedules identically to the original.
#[test]
fn format_roundtrip_preserves_scheduling() {
    let inst = rigid_dag::paper::figure3();
    let text = format::write(&inst);
    let parsed = format::parse(&text).expect("roundtrip parse");
    let r1 = engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut CatBatch::new());
    let r2 = engine::EngineConfig::new().run(&mut StaticSource::new(parsed), &mut CatBatch::new());
    assert_eq!(r1.makespan(), r2.makespan());
    assert_eq!(r1.makespan(), Time::from_millis(15, 200));
}

/// Generated instances survive the format and schedule identically.
#[test]
fn generated_instances_roundtrip() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..4u64 {
        let inst = rigid_dag::gen::erdos_dag(seed, 30, 0.15, &sampler, 8);
        let text = format::write(&inst);
        let parsed = format::parse(&text).expect("parse generated");
        assert_eq!(parsed.len(), inst.len());
        let r1 = engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut CatBatch::new());
        let r2 = engine::EngineConfig::new().run(&mut StaticSource::new(parsed), &mut CatBatch::new());
        assert_eq!(r1.makespan(), r2.makespan(), "seed {seed}");
    }
}

/// Traces and processor assignments are consistent for every scheduler.
#[test]
fn traces_and_assignments_for_all_schedulers() {
    let inst = rigid_dag::gen::layered(77, 6, 6, &TaskSampler::default_mix(), 8);
    let schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(CatBatch::new()),
        Box::new(CatBatchBackfill::new()),
        Box::new(CatPrio::new()),
        Box::new(CatBatchStrip::new(8)),
    ];
    for mut sched in schedulers {
        let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), sched.as_mut());
        let trace = rigid_sim::trace::Trace::from_run(&r);
        assert!(trace.is_causal(), "{}", sched.name());
        assert_eq!(trace.len(), inst.len() * 3);
        let a = rigid_sim::assign::assign(&r.schedule);
        assert!(a.validate(&r.schedule), "{}", sched.name());
    }
}

/// Backfilling is not instance-wise dominant — pulling a task forward
/// can change a later batch's greedy packing (a Graham anomaly) — but it
/// (a) always keeps the Lemma 7 guarantee and (b) wins or ties on the
/// large majority of the ensemble.
#[test]
fn backfill_mostly_wins_and_always_keeps_guarantee() {
    let sampler = TaskSampler::default_mix();
    let mut wins_or_ties = 0usize;
    let mut total = 0usize;
    for seed in 0..10u64 {
        for (name, inst) in rigid_dag::gen::family(seed, 60, &sampler, 8) {
            let plain = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
            let bf = engine::EngineConfig::new().run(
                &mut StaticSource::new(inst.clone()),
                &mut CatBatchBackfill::new(),
            );
            assert!(
                bf.makespan() <= catbatch::analysis::lemma7_bound(&inst),
                "{name} seed {seed}: backfill broke Lemma 7"
            );
            total += 1;
            if bf.makespan() <= plain.makespan() {
                wins_or_ties += 1;
            }
        }
    }
    assert!(
        wins_or_ties * 10 >= total * 8,
        "backfill won/tied only {wins_or_ties}/{total}"
    );
}

/// The checked-in sample instance (`assets/figure3.rigid`) parses to the
/// paper example and schedules to 15.2 — the full file-based workflow.
#[test]
fn asset_figure3_file_roundtrip() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../assets/figure3.rigid");
    let text = std::fs::read_to_string(path).expect("asset present");
    let inst = format::parse(&text).expect("asset parses");
    assert_eq!(inst.len(), 11);
    assert_eq!(inst.procs(), 4);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst), &mut CatBatch::new());
    assert_eq!(r.makespan(), Time::from_millis(15, 200));
}

/// Large-scale smoke test (ignored by default; run with --ignored):
/// 50k-task layered instance through CatBatch in one engine run.
#[test]
#[ignore = "large-scale stress; run explicitly with -- --ignored"]
fn stress_fifty_thousand_tasks() {
    let inst = rigid_dag::gen::layered(1, 500, 100, &TaskSampler::default_mix(), 128);
    assert!(inst.len() > 20_000);
    let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
    r.schedule.assert_valid(&inst);
    let ratio = r
        .makespan()
        .ratio(analysis::lower_bound(&inst))
        .to_f64();
    assert!(ratio <= (inst.len() as f64).log2() + 3.0 + 1e-9);
}
