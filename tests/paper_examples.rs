//! End-to-end reproduction of the paper's worked examples across crates.

use catbatch::analysis::{attribute_table, decompose, lemma7_bound};
use catbatch::CatBatch;
use rigid_baselines::{asap, Optimal};
use rigid_dag::paper::{figure3, intro_example, FIGURE3_LABELS};
use rigid_dag::{analysis, StaticSource};
use rigid_sim::engine;
use rigid_strip::CatBatchStrip;
use rigid_time::Time;

/// Figure 6: CatBatch finishes the Figure 3 example at exactly 15.2.
#[test]
fn figure6_makespan_and_batches() {
    let inst = figure3();
    let mut cb = CatBatch::new();
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cb);
    result.schedule.assert_valid(&inst);
    assert_eq!(result.makespan(), Time::from_millis(15, 200));
    assert_eq!(cb.batch_history().len(), 6);
    // Within the Lemma 7 envelope.
    assert!(result.makespan() <= lemma7_bound(&inst));
}

/// The strip variant also completes the example feasibly and
/// contiguously (its makespan may differ — NFDH packs each batch).
#[test]
fn figure3_strip_variant() {
    let inst = figure3();
    let mut cbs = CatBatchStrip::new(inst.procs());
    let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
    result.schedule.assert_valid(&inst);
    cbs.packing().assert_valid();
    assert_eq!(cbs.packing().len(), 11);
    assert_eq!(cbs.packing().height(), result.makespan());
    assert!(result.makespan() <= lemma7_bound(&inst));
}

/// The attribute table covers all 11 tasks with the paper's values
/// (full check lives in unit tests; here we verify the integration
/// surface: labels present, categories consistent with the batches the
/// online run formed).
#[test]
fn figure3_attributes_match_online_batches() {
    let inst = figure3();
    let attrs = attribute_table(&inst);
    assert_eq!(attrs.len(), 11);
    for label in FIGURE3_LABELS {
        assert!(attrs.iter().any(|a| a.label == label), "missing {label}");
    }

    let mut cb = CatBatch::new();
    let _ = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cb);
    // Every task's offline category equals the category of the online
    // batch that executed it.
    for a in &attrs {
        let online = cb.category_of_task(a.id).expect("task scheduled");
        assert_eq!(online, a.category, "category mismatch for {}", a.label);
    }
    // And the offline decomposition has the same batch structure.
    let d = decompose(&inst);
    assert_eq!(d.batch_count(), cb.batch_history().len());
}

/// Figure 1 at several platform sizes: ASAP pays Θ(P), CatBatch stays
/// within a constant factor of the optimal witness 1 + 2Pε.
#[test]
fn figure1_scaling() {
    let eps = Time::from_ratio(1, 200);
    for p in [2u32, 4, 8, 16] {
        let inst = intro_example(p, eps);
        let asap_span = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut asap()).makespan();
        let cb_span =
            engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new()).makespan();
        let opt_like = Time::ONE + eps.mul_int(2 * p as i64);
        assert!(asap_span >= Time::from_int(p as i64), "P={p}");
        assert!(
            cb_span <= opt_like.mul_int(3),
            "P={p}: CatBatch {cb_span} not within 3× of {opt_like}"
        );
    }
}

/// For the smallest intro example the exact optimum is 1 + 2Pε and
/// CatBatch lands within its Theorem 1 guarantee of the true optimum.
#[test]
fn figure1_exact_optimum_p2() {
    let eps = Time::from_ratio(1, 100);
    let inst = intro_example(2, eps);
    let opt = Optimal::default().makespan(&inst);
    assert_eq!(opt, Time::ONE + eps.mul_int(4));
    let cb = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new()).makespan();
    let bound = (inst.len() as f64).log2() + 3.0;
    assert!(cb.ratio(opt).to_f64() <= bound);
}

/// The Graham lower bound of the Figure 3 example: area 37.5 over P=4
/// gives 9.375 > C = 6.8.
#[test]
fn figure3_lower_bound() {
    let inst = figure3();
    let stats = analysis::stats(&inst);
    assert_eq!(stats.area, Time::from_millis(37, 500));
    assert_eq!(stats.lower_bound, Time::from_ratio(75, 8));
}
