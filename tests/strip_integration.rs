//! Strip packing ↔ rigid scheduling consistency.

use rigid_dag::gen::{family, TaskSampler};
use rigid_dag::{analysis, StaticSource};
use rigid_sim::engine;
use rigid_strip::CatBatchStrip;

/// The packing and the schedule agree placement by placement: same
/// start (y), same duration (height), same width (procs), and the strip
/// height equals the makespan.
#[test]
fn packing_matches_schedule() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..4u64 {
        for (name, inst) in family(seed, 40, &sampler, 8) {
            let mut cbs = CatBatchStrip::new(inst.procs());
            let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
            result.schedule.assert_valid(&inst);
            let packing = cbs.packing();
            packing.assert_valid();
            assert_eq!(packing.len(), inst.len(), "{name}");
            assert_eq!(packing.height(), result.makespan(), "{name}");
            for r in packing.rects() {
                let p = result.schedule.placement(r.id).expect("placed");
                assert_eq!(r.y, p.start, "{name}: y mismatch for {}", r.id);
                assert_eq!(r.height, p.finish - p.start, "{name}");
                assert_eq!(r.width, p.procs, "{name}");
                assert!(r.x_end() <= inst.procs(), "{name}");
            }
        }
    }
}

/// Contiguity in the strict sense: at any instant, the x-intervals of
/// concurrently running rectangles are disjoint (this is what rigid
/// scheduling alone does not guarantee). Already implied by the
/// geometric validation; asserted here directly as the integration
/// contract.
#[test]
fn concurrent_rects_have_disjoint_intervals() {
    let inst = rigid_dag::gen::erdos_dag(11, 60, 0.1, &TaskSampler::default_mix(), 8);
    let mut cbs = CatBatchStrip::new(8);
    let _ = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
    let rects = cbs.packing().rects();
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            let time_overlap = a.y < b.y_end() && b.y < a.y_end();
            if time_overlap {
                let x_overlap = a.x < b.x_end() && b.x < a.x_end();
                assert!(!x_overlap, "{} and {} overlap", a.id, b.id);
            }
        }
    }
}

/// The price of contiguity is bounded: CatBatch-Strip never exceeds the
/// Lemma 7 bound (NFDH shares the 2·area + max-height shelf guarantee).
#[test]
fn strip_within_lemma7() {
    let sampler = TaskSampler::default_mix();
    for seed in 0..6u64 {
        let inst = rigid_dag::gen::layered(seed, 7, 8, &sampler, 8);
        let bound = catbatch::analysis::lemma7_bound(&inst);
        let mut cbs = CatBatchStrip::new(8);
        let result = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cbs);
        assert!(
            result.makespan() <= bound,
            "seed {seed}: {} > {bound}",
            result.makespan()
        );
        assert!(result.makespan() >= analysis::lower_bound(&inst));
    }
}
