//! Integration checks of the theorem-level guarantees on random
//! ensembles, including certification against the *exact* optimum on
//! small instances (stronger than the Lb-relative bounds).

use catbatch::lmatrix::{theorem1_ratio_bound, theorem2_ratio_bound};
use catbatch::CatBatch;
use rigid_baselines::{OfflineBatch, Optimal};
use rigid_dag::gen::{family, LengthDist, ProcDist, TaskSampler};
use rigid_dag::{analysis, StaticSource};
use rigid_sim::engine;
use rigid_sim::offline::run_offline;
use rigid_time::Time;

/// Theorem 1 across the full generator family at a few sizes.
#[test]
fn theorem1_holds_across_families() {
    for seed in 0..4u64 {
        for n in [5usize, 37, 150] {
            for (name, inst) in family(seed, n, &TaskSampler::default_mix(), 8) {
                let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
                r.schedule.assert_valid(&inst);
                let ratio = r.makespan().ratio(analysis::lower_bound(&inst)).to_f64();
                let bound = theorem1_ratio_bound(inst.len());
                assert!(
                    ratio <= bound + 1e-9,
                    "{name} seed={seed} n={n}: {ratio} > {bound}"
                );
            }
        }
    }
}

/// Theorem 2 with tight equal lengths: ratio within the constant 6.
#[test]
fn theorem2_constant_for_equal_lengths() {
    let sampler = TaskSampler {
        length: LengthDist::Constant(Time::from_ratio(3, 2)),
        procs: ProcDist::Uniform { min: 1, max: 8 },
    };
    for seed in 0..6u64 {
        for (name, inst) in family(seed, 60, &sampler, 8) {
            let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
            let ratio = r.makespan().ratio(analysis::lower_bound(&inst)).to_f64();
            assert!(ratio <= 6.0 + 1e-9, "{name} seed={seed}: {ratio} > 6");
        }
    }
}

/// Theorem 2 with a measured spread: the bound uses the instance's own
/// M/m.
#[test]
fn theorem2_holds_with_spread() {
    let sampler = TaskSampler {
        length: LengthDist::LogUniform {
            min: 0.25,
            max: 16.0,
        },
        procs: ProcDist::PowersOfTwo,
    };
    for seed in 0..6u64 {
        for (name, inst) in family(seed, 80, &sampler, 16) {
            let stats = analysis::stats(&inst);
            let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
            let ratio = r.makespan().ratio(stats.lower_bound).to_f64();
            let bound = theorem2_ratio_bound(stats.min_len, stats.max_len);
            assert!(ratio <= bound + 1e-9, "{name} seed={seed}: {ratio} > {bound}");
        }
    }
}

/// Certification against the exact optimum (not just Lb): on small
/// random instances, CatBatch's true competitive ratio respects
/// Theorem 1 and the offline batch comparator respects its
/// log2(n+1) + 2 bound.
#[test]
fn exact_ratio_certification() {
    for seed in 0..12u64 {
        let inst = rigid_dag::gen::erdos_dag(seed, 7, 0.3, &TaskSampler::default_mix(), 3);
        let opt = Optimal::default().makespan(&inst);
        let cb = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new())
            .makespan();
        let cb_ratio = cb.ratio(opt).to_f64();
        assert!(
            cb_ratio <= theorem1_ratio_bound(inst.len()) + 1e-9,
            "seed {seed}: CatBatch true ratio {cb_ratio}"
        );
        let ob = run_offline(&mut OfflineBatch::greedy(), &inst).makespan();
        assert!(
            ob.ratio(opt).to_f64() <= ((inst.len() + 1) as f64).log2() + 2.0 + 1e-9,
            "seed {seed}: offline batch true ratio"
        );
    }
}

/// Lemma 7 dominates every CatBatch run, and each batch obeys Lemma 6.
#[test]
fn lemma6_and_7_on_ensembles() {
    use catbatch::lmatrix::category_length;
    for seed in 20..26u64 {
        let inst = rigid_dag::gen::layered(seed, 8, 8, &TaskSampler::default_mix(), 8);
        let c = analysis::critical_path(inst.graph());
        let mut cb = CatBatch::new();
        let r = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut cb);
        assert!(r.makespan() <= catbatch::analysis::lemma7_bound(&inst));
        for b in cb.batch_history() {
            let bound =
                b.area.mul_int(2).div_int(inst.procs() as i64) + category_length(b.category, c);
            assert!(b.span() <= bound, "seed {seed} batch {}", b.category);
        }
    }
}

/// The makespan can never beat the Graham bound, for any scheduler.
#[test]
fn makespan_at_least_lb_always() {
    for seed in 0..8u64 {
        for (_, inst) in family(seed, 40, &TaskSampler::default_mix(), 8) {
            let lb = analysis::lower_bound(&inst);
            let cb = engine::EngineConfig::new().run(&mut StaticSource::new(inst.clone()), &mut CatBatch::new());
            assert!(cb.makespan() >= lb);
            let asap = engine::EngineConfig::new().run(
                &mut StaticSource::new(inst.clone()),
                &mut rigid_baselines::asap(),
            );
            assert!(asap.makespan() >= lb);
        }
    }
}
