//! Offline stand-in for `criterion`. Bench targets compile and run:
//! each registered benchmark executes its body a handful of times and
//! prints a coarse wall-clock figure. No statistics, warm-up, or
//! reports — just enough to keep `cargo bench`/`--all-targets` green
//! without the real crate.

pub use std::hint::black_box;

use std::fmt;
use std::time::Instant;

const ITERS: u32 = 3;

/// Entry point handed to each bench target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (recorded, not used).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| body(b));
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput unit (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| body(b, input));
        self
    }

    /// Runs a plain named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), |b| body(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, mut body: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { elapsed_nanos: 0 };
    let start = Instant::now();
    body(&mut bencher);
    let total = start.elapsed();
    eprintln!("bench {label}: {total:?} ({ITERS} iterations)");
}

/// Passed to the bench body; `iter` runs the measured closure.
pub struct Bencher {
    elapsed_nanos: u128,
}

impl Bencher {
    /// Runs the routine a fixed small number of times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
    }
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput annotation for a benchmark group.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a bench group: either the struct-like form with `name`,
/// `config`, and `targets`, or the simple positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
