//! Offline stand-in for `crossbeam`, exposing the scoped-thread API
//! this workspace uses (`crossbeam::scope(|s| s.spawn(|_| ..))`) on
//! top of `std::thread::scope`.
//!
//! Divergence from the real crate: if a spawned thread panics, the
//! panic propagates out of [`scope`] directly (std semantics) instead
//! of being returned as `Err`, so the usual `.expect(..)` never fires —
//! the test still fails, with the original panic message.

/// Spawns scoped threads; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Handle for spawning threads tied to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread; the closure receives this scope handle (the
    /// crossbeam convention — call sites typically bind it `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn threads_run_and_join() {
        let hits = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("scope failed");
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
