//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` block macro with `#![proptest_config(..)]`,
//! `name in strategy` parameters, `prop_assert!`/`prop_assert_eq!`,
//! integer-range and tuple strategies, `.prop_map`, and
//! `prop::collection::vec`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: inputs are drawn from a deterministic splitmix64 stream
//! seeded from the test's name, so every run explores the same cases.

/// Test-runner types: config, case errors, and the deterministic RNG.
pub mod test_runner {
    use std::fmt;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property: the assertion message plus the case number.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 stream, seeded from the test's name so
    /// distinct tests draw distinct (but reproducible) inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (FNV-1a hash).
        pub fn deterministic(label: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            if span <= u64::MAX as u128 {
                (self.next_u64() as u128 * span) >> 64
            } else {
                let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                wide % span
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as u128;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = hi.wrapping_sub(lo) as u128 + 1;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategies!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($idx:tt $name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Module alias so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// aborts with the formatted message instead of panicking mid-stream.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...)` runs
/// `config.cases` times with inputs drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, err);
                }
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..100, 1i64..50).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..=9, y in -5i128..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn mapped_pairs_ordered((lo, hi) in arb_pair()) {
            prop_assert!(lo < hi, "{lo} !< {hi}");
        }

        #[test]
        fn vectors_sized(v in prop::collection::vec(0u8..10, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
