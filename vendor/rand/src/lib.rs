//! Offline stand-in for `rand` 0.9, covering the subset this workspace
//! uses: [`RngCore`], the [`Rng`] extension trait (`random_range`,
//! `random_bool`), [`SeedableRng`] with the splitmix64-based
//! `seed_from_u64`, and [`seq::SliceRandom::shuffle`].
//!
//! Sampling quality is adequate for generators and fault injection —
//! what matters here is determinism: the same seed always yields the
//! same stream. No claim of stream-compatibility with the real crate.

use std::ops::{Range, RangeInclusive};

/// The core interface every random number generator implements.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range shape that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` (`span > 0`), widened through u128 so
/// every integer width shares one code path.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        // Multiply-shift: maps 64 random bits onto [0, span) with bias
        // below 2^-64 per draw — negligible for simulation workloads.
        ((rng.next_u64() as u128 * span) >> 64) as u128
    } else {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        wide % span
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator used here).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via splitmix64 (same
    /// construction the real rand crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{sample_below, RngCore};

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, (i + 1) as u128) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.random_range(3i64..10);
            assert!((3..10).contains(&a));
            let b = rng.random_range(1u32..=4);
            assert!((1..=4).contains(&b));
            let f = rng.random_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
