//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] with a genuine
//! ChaCha8 block function (8 rounds), implementing the stub rand
//! crate's [`RngCore`]/[`SeedableRng`]. Deterministic per seed; not
//! stream-compatible with the real crate.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" + key + 64-bit block counter + zero nonce.
        let mut input = [0u32; 16];
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;

        let mut working = input;
        for _ in 0..4 {
            // 4 double rounds = 8 rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, i)) in self.buffer.iter_mut().zip(working.iter().zip(input.iter())) {
            *out = w.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_vary_within_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let words: std::collections::HashSet<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert!(words.len() > 60, "stream looks degenerate: {words:?}");
    }
}
