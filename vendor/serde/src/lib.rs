//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on concrete
//! structs and enums, driven through a JSON-like [`Value`] data model.
//!
//! The real serde's visitor architecture is replaced by a much simpler
//! contract: `Serialize` renders a value into a [`Value`] tree, and
//! `Deserialize` rebuilds a value from one. `serde_json` (the sibling
//! stub) converts between [`Value`] and JSON text. Derived impls follow
//! serde's conventions: structs are objects, newtype structs are their
//! inner value, unit enum variants are strings, and data-carrying enum
//! variants are single-key objects (externally tagged).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like tree: the data model every `Serialize`/`Deserialize`
/// implementation speaks.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any integer (i128 covers every integer type used in this
    /// workspace).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so serialized output is
    /// deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts a key into an object value. Panics on non-objects (only
    /// called from generated code).
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(entries) => entries.push((key.to_string(), value)),
            _ => panic!("insert on non-object Value"),
        }
    }

    /// Looks up a field of an object value.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value, or an error for other shapes.
    pub fn elements(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }

    /// A short name of this value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// An error reporting a missing object field.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produces the value tree for this object.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the
    /// object. Mirrors serde's behavior: `Option` fields default to
    /// `None`, everything else errors.
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON into the data model and re-serialize it — the stub equivalent of
// the real `serde_json::Value` being self-(de)serializable.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::new(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected boolean, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self) -> Value {
        let mut obj = Value::object();
        match self {
            Ok(v) => obj.insert("Ok", v.serialize()),
            Err(e) => obj.insert("Err", e.serialize()),
        }
        obj
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if let Some(v) = value.field("Ok") {
            return T::deserialize(v).map(Ok);
        }
        if let Some(e) = value.field("Err") {
            return E::deserialize(e).map(Err);
        }
        Err(Error::new(format!(
            "expected object with `Ok` or `Err` key, found {}",
            value.kind()
        )))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.elements()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value.elements()?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected array of {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as objects; keys must render to strings or integers.
fn key_to_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        other => panic!("unsupported map key shape: {}", other.kind()),
    }
}

/// Rebuilds a key from its object-key string: tries the string itself
/// first, then an integer reading (serde_json stringifies integer keys).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    match key.parse::<i128>() {
        Ok(i) => K::deserialize(&Value::Int(i)),
        Err(_) => Err(Error::new(format!("cannot rebuild map key from {key:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output (the real serde_json is unordered
        // here; determinism is strictly better for this workspace).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, found {}", other.kind()))),
        }
    }
}
