//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! A hand-rolled token-tree parser (no `syn`/`quote`) that supports the
//! shapes this workspace uses: non-generic named-field structs, tuple
//! structs, and enums with unit / named-field / tuple variants. Generated
//! code follows serde's JSON conventions: structs serialize as objects,
//! one-field tuple structs as their inner value, unit variants as the
//! variant name string, and data variants as `{"Name": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Parsed {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from the token cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Parses the field names of a braced field list, skipping types (commas
/// inside angle brackets do not split fields).
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `:` then the type up to a top-level comma.
        debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'));
        i += 1;
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the elements of a parenthesized tuple field list.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next top-level comma (also skips `= expr`
        // discriminants, which this workspace does not use).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the serde stub derive does not support generic types (deriving for {name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Parsed::Struct { name, shape }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                _ => panic!("derive: enum {name} without a body"),
            };
            Parsed::Enum { name, variants }
        }
        other => panic!("derive: cannot derive for {other} {name}"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Parsed::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut b = String::from("let mut obj = ::serde::Value::object();\n");
                    for f in &fields {
                        b.push_str(&format!(
                            "obj.insert(\"{f}\", ::serde::Serialize::serialize(&self.{f}));\n"
                        ));
                    }
                    b.push_str("obj");
                    b
                }
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut body = String::from(
                            "let mut inner = ::serde::Value::object();\n",
                        );
                        for f in fields {
                            body.push_str(&format!(
                                "inner.insert(\"{f}\", ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        body.push_str(&format!(
                            "let mut obj = ::serde::Value::object();\n\
                             obj.insert(\"{vn}\", inner);\nobj"
                        ));
                        arms.push_str(&format!("{name}::{vn} {{ {pat} }} => {{ {body} }}\n"));
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pat = binds.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({pat}) => {{\n\
                             let mut obj = ::serde::Value::object();\n\
                             obj.insert(\"{vn}\", {inner});\nobj\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("derive(Serialize): generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Parsed::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut inits = String::new();
                    for f in &fields {
                        inits.push_str(&format!(
                            "{f}: match value.field(\"{f}\") {{\n\
                             Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                             None => ::serde::Deserialize::missing(\"{f}\")?,\n\
                             }},\n"
                        ));
                    }
                    format!("Ok({name} {{ {inits} }})")
                }
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
                }
                Shape::Tuple(n) => {
                    let mut items = String::new();
                    for i in 0..n {
                        items.push_str(&format!(
                            "::serde::Deserialize::deserialize(&items[{i}])?,"
                        ));
                    }
                    format!(
                        "let items = value.elements()?;\n\
                         if items.len() != {n} {{\n\
                         return Err(::serde::Error::new(format!(\n\
                         \"expected array of {n} for {name}, found {{}}\", items.len())));\n\
                         }}\n\
                         Ok({name}({items}))"
                    )
                }
                Shape::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    Shape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: match inner.field(\"{f}\") {{\n\
                                 Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                                 None => ::serde::Deserialize::missing(\"{f}\")?,\n\
                                 }},\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let body = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::deserialize(inner)?)")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let items = inner.elements()?; {name}::{vn}({}) }}",
                                items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => return Ok({body}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(s) = value {{\n\
                 match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::serde::Value::Object(entries) = value {{\n\
                 if let Some((tag, inner)) = entries.first() {{\n\
                 let _ = inner;\n\
                 match tag.as_str() {{ {data_arms} _ => {{}} }}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::Error::new(format!(\n\
                 \"no variant of {name} matches {{}}\", value.kind())))\n\
                 }}\n}}"
            )
        }
    };
    out.parse().expect("derive(Deserialize): generated code parses")
}
