//! Offline stand-in for `serde_json`: renders the stub serde [`Value`]
//! model to JSON text and parses JSON text back. Covers the API surface
//! this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`Error`].

pub use serde::Value;

/// A JSON (de)serialization error.
pub type Error = serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indents).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null"); // matches serde_json's lossy default
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer {text:?}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the maximal span free of quotes and
                    // escapes. UTF-8 continuation bytes are >= 0x80 and
                    // can never collide with '"' or '\\', so a byte scan
                    // always stops on a character boundary; validating
                    // only the span keeps long strings linear instead of
                    // re-checking the whole remaining input per char.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<(u32, i64)> = vec![(1, -2), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,-2],[3,4]]");
        let back: Vec<(u32, i64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: parse_string used to re-validate the whole
        // remaining input per character, making big string fields
        // quadratic (~seconds for a 160KB frame). Spans between
        // escapes are now copied in bulk.
        let body: String = "abcdef ".repeat(64 * 1024);
        let json = to_string(&body).unwrap();
        let started = std::time::Instant::now();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, body);
        assert!(
            started.elapsed() < std::time::Duration::from_millis(250),
            "448KB string took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn string_spans_split_on_escapes_and_multibyte() {
        let s = "plain \"quoted\" back\\slash newline\n tab\t émoji 🦀 done";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn map_keys_stringify() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":\"x\"}");
        let back: BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
